//! Sweep enumeration: the exact set of engine jobs each figure/table
//! consumes, so `repro` can push an entire run through the parallel
//! experiment engine *before* rendering anything.
//!
//! Keeping the enumeration separate from the figure code means the
//! figures stay straight-line "ask for a report, format it" code, while
//! the engine sees the whole job graph up front — deduplicated across
//! figures, executed on all workers, resumable from the store.

use crate::configs::*;
use crate::runner::ExpScale;
use secpref_exp::JobSpec;
use secpref_types::{PrefetcherKind, SamplingConfig, SystemConfig};

/// Figure/table targets that involve simulation (static tables are
/// rendered directly and need no jobs).
pub const SIM_TARGETS: &[&str] = &[
    "fig1", "fig3", "fig4", "fig5", "fig6", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15",
    "fig16", "stats",
];

/// Jobs for one target. Unknown and static targets yield no jobs.
/// Duplicates across targets are fine — the engine deduplicates.
pub fn jobs_for(target: &str, scale: ExpScale, mix_count: usize) -> Vec<JobSpec> {
    let mut jobs = Vec::new();
    let mut singles = |cfgs: &[SystemConfig], traces: &[String]| {
        for cfg in cfgs {
            for tr in traces {
                jobs.push(JobSpec::single(cfg.clone(), tr, scale));
            }
        }
    };
    let per_kind = |f: fn(PrefetcherKind) -> SystemConfig| -> Vec<SystemConfig> {
        PrefetcherKind::EVALUATED.iter().map(|&k| f(k)).collect()
    };
    let suite = full_suite();
    match target {
        "fig1" => {
            let mut cfgs = per_kind(on_access_nonsecure);
            cfgs.extend(per_kind(on_access_secure));
            cfgs.extend(per_kind(on_commit_secure));
            cfgs.push(secure_nopref());
            cfgs.push(nonsecure_nopref());
            singles(&cfgs, &suite);
        }
        "fig3" | "fig4" | "fig5" => {
            let mut cfgs = vec![nonsecure_nopref(), secure_nopref()];
            cfgs.extend(per_kind(on_access_nonsecure));
            cfgs.extend(per_kind(on_access_secure));
            if target == "fig5" {
                singles(&cfgs, &[mcf_trace()]);
                singles(&[nonsecure_nopref()], &[mcf_trace()]);
            } else {
                singles(&cfgs, &suite);
            }
        }
        "fig6" => {
            let mut cfgs = per_kind(on_access_secure);
            cfgs.extend(per_kind(on_commit_secure));
            singles(&cfgs, &suite);
        }
        "fig10" => {
            let mut cfgs = per_kind(on_commit_secure);
            cfgs.extend(per_kind(timely_secure));
            cfgs.push(secure_nopref());
            cfgs.push(nonsecure_nopref());
            singles(&cfgs, &suite);
        }
        "fig11" => {
            let mut cfgs = per_kind(on_access_nonsecure);
            cfgs.extend(per_kind(on_commit_secure));
            cfgs.extend(per_kind(on_commit_suf));
            cfgs.push(timely_secure(PrefetcherKind::Berti));
            cfgs.push(timely_secure_suf(PrefetcherKind::Berti));
            cfgs.push(secure_nopref());
            cfgs.push(secure_nopref().with_suf(true));
            cfgs.push(nonsecure_nopref());
            singles(&cfgs, &suite);
        }
        "fig12" => {
            let cfgs = [
                on_commit_secure(PrefetcherKind::Berti),
                timely_secure(PrefetcherKind::Berti),
                timely_secure_suf(PrefetcherKind::Berti),
                nonsecure_nopref(),
            ];
            let mut all = spec_suite();
            all.extend(gap_suite());
            singles(&cfgs, &all);
        }
        "fig13" => {
            let mut cfgs = per_kind(on_access_nonsecure);
            cfgs.extend(per_kind(on_commit_secure));
            cfgs.extend(per_kind(on_commit_suf));
            cfgs.extend(per_kind(timely_secure));
            singles(&cfgs, &suite);
        }
        "fig14" => {
            let mut cfgs = per_kind(on_access_nonsecure);
            cfgs.extend(per_kind(on_commit_secure));
            cfgs.extend(per_kind(on_commit_suf));
            cfgs.push(secure_nopref());
            cfgs.push(nonsecure_nopref());
            singles(&cfgs, &suite);
        }
        "fig15" => {
            let mixes = multicore_mixes(mix_count);
            let cfgs = [
                nonsecure_nopref(),
                secure_nopref(),
                on_access_nonsecure(PrefetcherKind::Berti),
                on_commit_secure(PrefetcherKind::Berti),
                on_commit_suf(PrefetcherKind::Berti),
                timely_secure(PrefetcherKind::Berti),
                timely_secure_suf(PrefetcherKind::Berti),
            ];
            for mix in &mixes {
                for cfg in &cfgs {
                    jobs.push(JobSpec::mix(cfg.clone(), mix, scale));
                }
                // Alone-runs for the weighted-speedup denominators.
                for name in mix {
                    jobs.push(JobSpec::single(nonsecure_nopref(), name, scale));
                }
            }
        }
        "fig16" => {
            let cfgs = [
                on_access_nonsecure(PrefetcherKind::Berti),
                on_commit_suf(PrefetcherKind::Berti),
                timely_secure_suf(PrefetcherKind::Berti),
                secure_nopref(),
            ];
            for n in crate::figures::MIX_PRESSURE_CORES {
                let mix = pressure_mix(n);
                for cfg in &cfgs {
                    jobs.push(JobSpec::mix(cfg.clone(), &mix, scale));
                }
                // Alone-runs for the weighted-speedup denominators.
                for name in &mix {
                    jobs.push(JobSpec::single(nonsecure_nopref(), name, scale));
                }
            }
        }
        "stats" => {
            let berti = PrefetcherKind::Berti;
            let cfgs = [
                nonsecure_nopref(),
                secure_nopref(),
                on_access_nonsecure(berti),
                on_access_secure(berti),
                on_commit_secure(berti),
                on_commit_suf(berti),
            ];
            singles(&cfgs, &suite);
        }
        _ => {}
    }
    jobs
}

/// The SMARTS plan `repro <targets> --sampled` applies to every sweep
/// job: the exact plan the sampled-vs-full differential validates
/// (`secpref_check::sampling::plan`), so sweep estimates inherit its
/// measured error bound. Sampled jobs get distinct store keys (the plan
/// is part of the job key), so sampled and full-detail results coexist
/// in the store and the manifest carries the per-metric CI blocks.
pub fn sampling_plan() -> SamplingConfig {
    SamplingConfig::new(2_000, 500, 3_500).with_jitter(300, 11)
}

/// Wraps every job in a sweep with the pinned [`sampling_plan`].
pub fn with_sampling(jobs: Vec<JobSpec>) -> Vec<JobSpec> {
    let plan = sampling_plan();
    jobs.into_iter().map(|j| j.with_sampling(plan)).collect()
}

/// Jobs for a set of requested targets (deduplication happens in the
/// engine, not here).
pub fn jobs_for_targets<'a>(
    targets: impl IntoIterator<Item = &'a str>,
    scale: ExpScale,
    mix_count: usize,
) -> Vec<JobSpec> {
    targets
        .into_iter()
        .flat_map(|t| jobs_for(t, scale, mix_count))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn every_sim_target_has_jobs() {
        for t in SIM_TARGETS {
            assert!(
                !jobs_for(t, ExpScale::Quick, 2).is_empty(),
                "target {t} enumerated no jobs"
            );
        }
    }

    #[test]
    fn static_targets_have_none() {
        for t in ["table1", "table2", "table3", "nonsense"] {
            assert!(jobs_for(t, ExpScale::Quick, 2).is_empty());
        }
    }

    #[test]
    fn normalizing_targets_include_their_baseline() {
        // Figures that normalize against non-secure no-pref must cover
        // those jobs or the render phase would simulate serially after
        // the parallel prewarm. (fig6/fig13 report raw MPKI/accuracy and
        // need no baseline.)
        let base_label = {
            let j = JobSpec::single(nonsecure_nopref(), "x", ExpScale::Quick);
            (j.cfg.prefetcher, j.cfg.secure)
        };
        for t in [
            "fig1", "fig3", "fig4", "fig5", "fig10", "fig11", "fig12", "fig14", "fig15", "stats",
        ] {
            let jobs = jobs_for(t, ExpScale::Quick, 2);
            assert!(
                jobs.iter()
                    .any(|j| (j.cfg.prefetcher, j.cfg.secure) == base_label),
                "target {t} is missing baseline jobs"
            );
        }
    }

    #[test]
    fn fig15_covers_mixes_and_alone_runs() {
        let jobs = jobs_for("fig15", ExpScale::Quick, 3);
        let mixes = jobs
            .iter()
            .filter(|j| matches!(j.workload, secpref_exp::Workload::Mix(_)))
            .count();
        let singles = jobs.len() - mixes;
        assert_eq!(mixes, 3 * 7);
        assert_eq!(singles, 3 * 4);
    }

    #[test]
    fn fig16_sweeps_every_pressure_level() {
        let jobs = jobs_for("fig16", ExpScale::Quick, 2);
        let mix_widths: Vec<usize> = jobs
            .iter()
            .filter_map(|j| match &j.workload {
                secpref_exp::Workload::Mix(ns) => Some(ns.len()),
                _ => None,
            })
            .collect();
        for n in crate::figures::MIX_PRESSURE_CORES {
            assert_eq!(
                mix_widths.iter().filter(|&&w| w == n).count(),
                4,
                "expected 4 configs at pressure {n}"
            );
        }
    }

    #[test]
    fn sampled_jobs_get_distinct_keys_and_the_validated_plan() {
        let jobs = jobs_for("fig5", ExpScale::Quick, 2);
        let plain_keys: HashSet<String> = jobs.iter().map(|j| j.key()).collect();
        let sampled = with_sampling(jobs);
        for j in &sampled {
            assert!(j.sampling.is_some());
            assert!(
                !plain_keys.contains(&j.key()),
                "sampled job key collides with its full-detail twin: {}",
                j.key()
            );
        }
        // One source of truth: the sweep plan is the one the
        // sampled-vs-full differential validated.
        assert_eq!(
            sampling_plan().canonical(),
            secpref_check::sampling::plan().canonical()
        );
    }

    #[test]
    fn sweeps_are_heavily_shared() {
        // The whole point of content-keyed jobs: figure sweeps overlap, so
        // the union is much smaller than the sum.
        let sum: usize = SIM_TARGETS
            .iter()
            .map(|t| jobs_for(t, ExpScale::Quick, 2).len())
            .sum();
        let union: HashSet<String> = SIM_TARGETS
            .iter()
            .flat_map(|t| jobs_for(t, ExpScale::Quick, 2))
            .map(|j| j.key())
            .collect();
        assert!(
            union.len() * 2 < sum,
            "expected ≥2× sharing, got {} unique of {sum} requested",
            union.len()
        );
    }
}
