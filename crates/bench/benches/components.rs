//! Component micro-benchmarks: throughput of the substrate structures
//! (cache array, MSHR file, DRAM model, GM, branch predictor) and of each
//! prefetcher's training path. These track simulator performance, which
//! bounds how large an experiment the harness can afford.

use criterion::{criterion_group, criterion_main, Criterion};
use secpref_cpu::PerceptronPredictor;
use secpref_ghostminion::GmCache;
use secpref_mem::{DramModel, DramRequest, FillAttrs, MshrFile, SetAssocCache};
use secpref_prefetch::{build, simple_access};
use secpref_types::config::DramConfig;
use secpref_types::{Ip, LineAddr, PrefetcherKind};

fn cache_ops(c: &mut Criterion) {
    c.bench_function("components/cache_fill_probe_touch", |b| {
        let mut cache = SetAssocCache::new(64, 12);
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(97);
            cache.fill(LineAddr::new(i % 4096), FillAttrs::default());
            std::hint::black_box(cache.probe(LineAddr::new((i / 2) % 4096)).is_some());
            cache.touch(LineAddr::new(i % 4096));
        })
    });
}

fn mshr_ops(c: &mut Criterion) {
    c.bench_function("components/mshr_alloc_complete", |b| {
        let mut mshr = MshrFile::new(16);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            if let Ok(t) = mshr.alloc(LineAddr::new(i), false, i, i) {
                std::hint::black_box(mshr.find(LineAddr::new(i)));
                mshr.complete(t);
            }
        })
    });
}

fn dram_ops(c: &mut Criterion) {
    c.bench_function("components/dram_enqueue_tick", |b| {
        let mut dram = DramModel::new(DramConfig::default());
        let mut done = Vec::new();
        let mut now = 0u64;
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            now += 3;
            let _ = dram.enqueue(DramRequest {
                line: LineAddr::new(i * 13 % 100_000),
                is_write: false,
                token: i,
                arrival: now,
            });
            dram.tick(now, &mut done);
            done.clear();
        })
    });
}

fn gm_ops(c: &mut Criterion) {
    c.bench_function("components/gm_insert_lookup_remove", |b| {
        let mut gm = GmCache::new(32);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            gm.insert(LineAddr::new(i % 64), i, 30);
            std::hint::black_box(gm.lookup(LineAddr::new(i % 64), i));
            if i.is_multiple_of(4) {
                gm.remove(LineAddr::new(i % 64));
            }
        })
    });
}

fn predictor_ops(c: &mut Criterion) {
    c.bench_function("components/perceptron_predict_update", |b| {
        let mut p = PerceptronPredictor::new();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let ip = Ip::new(0x400 + (i % 13) * 4);
            let pred = p.predict(ip);
            p.update(ip, !i.is_multiple_of(3), pred);
        })
    });
}

fn prefetcher_training(c: &mut Criterion) {
    for kind in PrefetcherKind::EVALUATED {
        c.bench_function(&format!("components/train_{}", kind.name()), |b| {
            let mut p = build(kind);
            let mut out = Vec::new();
            let mut i = 0u64;
            b.iter(|| {
                i += 1;
                // A mix of streaming and region-local traffic.
                let line = if i.is_multiple_of(3) {
                    i / 3
                } else {
                    50_000 + (i % 512)
                };
                out.clear();
                p.observe_access(
                    &simple_access(0x400 + (i % 7) * 8, line, i, i.is_multiple_of(5)),
                    &mut out,
                );
                std::hint::black_box(out.len());
            })
        });
    }
}

fn trace_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("components/trace_gen");
    group.sample_size(10);
    group.bench_function("spec_kernel_10k", |b| {
        let gen = secpref_trace::suite::trace_by_name("gcc_like").unwrap();
        b.iter(|| std::hint::black_box(gen.generate(10_000).instrs.len()))
    });
    group.bench_function("gap_bfs_10k", |b| {
        let gen = secpref_trace::suite::trace_by_name("bfs_small").unwrap();
        b.iter(|| std::hint::black_box(gen.generate(10_000).instrs.len()))
    });
    group.finish();
}

fn trace_io(c: &mut Criterion) {
    let t = secpref_trace::suite::trace_by_name("gcc_like")
        .unwrap()
        .generate(10_000);
    c.bench_function("components/trace_io_round_trip_10k", |b| {
        b.iter(|| {
            let mut buf = Vec::with_capacity(200_000);
            secpref_trace::io::write_trace(&mut buf, &t).unwrap();
            std::hint::black_box(
                secpref_trace::io::read_trace(buf.as_slice())
                    .unwrap()
                    .instrs
                    .len(),
            )
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(300));
    targets = cache_ops, mshr_ops, dram_ops, gm_ops, predictor_ops,
        prefetcher_training, trace_generation, trace_io
}
criterion_main!(benches);
