//! Component micro-benchmarks: throughput of the substrate structures
//! (cache array, MSHR file, DRAM model, GM, branch predictor) and of each
//! prefetcher's training path. These track simulator performance, which
//! bounds how large an experiment the harness can afford.

use secpref_bench::microbench::MicroBench;
use secpref_cpu::PerceptronPredictor;
use secpref_ghostminion::GmCache;
use secpref_mem::{DramModel, DramRequest, FillAttrs, MshrFile, SetAssocCache};
use secpref_prefetch::{build, simple_access};
use secpref_types::config::DramConfig;
use secpref_types::{Ip, LineAddr, PrefetcherKind};

fn main() {
    let mut mb = MicroBench::new("components");

    {
        let mut cache = SetAssocCache::new(64, 12);
        let mut i = 0u64;
        mb.bench("cache_fill_probe_touch", move || {
            i = i.wrapping_add(97);
            cache.fill(LineAddr::new(i % 4096), FillAttrs::default());
            let hit = cache.probe(LineAddr::new((i / 2) % 4096)).is_some();
            cache.touch(LineAddr::new(i % 4096));
            hit
        });
    }
    {
        let mut mshr = MshrFile::new(16);
        let mut i = 0u64;
        mb.bench("mshr_alloc_complete", move || {
            i += 1;
            if let Ok(t) = mshr.alloc(LineAddr::new(i), false, i, i) {
                std::hint::black_box(mshr.find(LineAddr::new(i)));
                mshr.complete(t);
            }
        });
    }
    {
        let mut dram = DramModel::new(DramConfig::default());
        let mut done = Vec::new();
        let mut now = 0u64;
        let mut i = 0u64;
        mb.bench("dram_enqueue_tick", move || {
            i += 1;
            now += 3;
            let _ = dram.enqueue(DramRequest {
                line: LineAddr::new(i * 13 % 100_000),
                is_write: false,
                token: i,
                arrival: now,
            });
            dram.tick(now, &mut done);
            done.clear();
        });
    }
    {
        let mut gm = GmCache::new(32);
        let mut i = 0u64;
        mb.bench("gm_insert_lookup_remove", move || {
            i += 1;
            gm.insert(LineAddr::new(i % 64), i, 30);
            std::hint::black_box(gm.lookup(LineAddr::new(i % 64), i));
            if i.is_multiple_of(4) {
                gm.remove(LineAddr::new(i % 64));
            }
        });
    }
    {
        let mut p = PerceptronPredictor::new();
        let mut i = 0u64;
        mb.bench("perceptron_predict_update", move || {
            i += 1;
            let ip = Ip::new(0x400 + (i % 13) * 4);
            let pred = p.predict(ip);
            p.update(ip, !i.is_multiple_of(3), pred);
        });
    }
    for kind in PrefetcherKind::EVALUATED {
        let mut p = build(kind);
        let mut out = secpref_prefetch::PfBuf::new();
        let mut i = 0u64;
        mb.bench(&format!("train_{}", kind.name()), move || {
            i += 1;
            // A mix of streaming and region-local traffic.
            let line = if i.is_multiple_of(3) {
                i / 3
            } else {
                50_000 + (i % 512)
            };
            out.clear();
            p.observe_access(
                &simple_access(0x400 + (i % 7) * 8, line, i, i.is_multiple_of(5)),
                &mut out,
            );
            out.len()
        });
    }
    {
        let gen = secpref_trace::suite::trace_by_name("gcc_like").unwrap();
        mb.bench("trace_gen/spec_kernel_10k", move || {
            gen.generate(10_000).instrs.len()
        });
    }
    {
        let gen = secpref_trace::suite::trace_by_name("bfs_small").unwrap();
        mb.bench("trace_gen/gap_bfs_10k", move || {
            gen.generate(10_000).instrs.len()
        });
    }
    {
        let t = secpref_trace::suite::trace_by_name("gcc_like")
            .unwrap()
            .generate(10_000);
        mb.bench("trace_io_round_trip_10k", move || {
            let mut buf = Vec::with_capacity(200_000);
            secpref_trace::io::write_trace(&mut buf, &t).unwrap();
            secpref_trace::io::read_trace(buf.as_slice())
                .unwrap()
                .instrs
                .len()
        });
    }
    mb.finish();
}
