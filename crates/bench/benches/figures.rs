//! Figure-path micro-benches: one timing per paper table/figure, each
//! running a scaled-down version of the experiment so `cargo bench`
//! exercises every regeneration path end to end. Results are
//! process-cached by the experiment engine, so after the first run each
//! timing measures the cached-lookup path; the first run measures the
//! simulation itself.

use secpref_bench::configs::*;
use secpref_bench::figures;
use secpref_bench::microbench::MicroBench;
use secpref_bench::runner::{run_cached, run_mix, ExpScale};
use secpref_types::PrefetcherKind;

const TRACE: &str = "bwaves_like";
const IRREGULAR_TRACE: &str = "mcf_like_a";

fn main() {
    // Keep bench results out of the default experiment store.
    std::env::set_var(
        "SECPREF_EXP_DIR",
        std::env::temp_dir().join(format!("secpref-bench-figures-{}", std::process::id())),
    );
    std::env::set_var("SECPREF_EXP_QUIET", "1");

    let mut mb = MicroBench::new("figures");
    let kind = PrefetcherKind::Berti;

    mb.bench("fig01/on_access_non_secure", || {
        run_cached(&on_access_nonsecure(kind), TRACE, ExpScale::Quick).ipc()
    });
    mb.bench("fig01/on_access_secure", || {
        run_cached(&on_access_secure(kind), TRACE, ExpScale::Quick).ipc()
    });
    mb.bench("fig01/on_commit_secure", || {
        run_cached(&on_commit_secure(kind), TRACE, ExpScale::Quick).ipc()
    });
    mb.bench("fig03/non_secure_nopref", || {
        run_cached(&nonsecure_nopref(), TRACE, ExpScale::Quick).ipc()
    });
    mb.bench("fig03/secure_nopref", || {
        run_cached(&secure_nopref(), TRACE, ExpScale::Quick).ipc()
    });
    mb.bench("fig04/miss_latency_secure_berti", || {
        run_cached(&on_access_secure(kind), TRACE, ExpScale::Quick).l1d_miss_latency()
    });
    mb.bench("fig05/mcf_secure_berti", || {
        run_cached(&on_access_secure(kind), IRREGULAR_TRACE, ExpScale::Quick).ipc()
    });
    mb.bench("fig06/classified_on_commit", || {
        run_cached(&on_commit_secure(kind), TRACE, ExpScale::Quick).cores[0]
            .class
            .total()
    });
    mb.bench("fig10/ts_stride", || {
        run_cached(
            &timely_secure(PrefetcherKind::IpStride),
            TRACE,
            ExpScale::Quick,
        )
        .ipc()
    });
    mb.bench("fig10/tsb", || {
        run_cached(&timely_secure(kind), TRACE, ExpScale::Quick).ipc()
    });
    mb.bench("fig11/on_commit_no_suf", || {
        run_cached(&on_commit_secure(kind), TRACE, ExpScale::Quick).ipc()
    });
    mb.bench("fig11/on_commit_suf", || {
        run_cached(&on_commit_suf(kind), TRACE, ExpScale::Quick).ipc()
    });
    mb.bench("fig12/tsb_suf_spec", || {
        run_cached(&timely_secure_suf(kind), TRACE, ExpScale::Quick).ipc()
    });
    mb.bench("fig12/tsb_suf_gap", || {
        run_cached(&timely_secure_suf(kind), "bfs_small", ExpScale::Quick).ipc()
    });
    mb.bench("fig13/accuracy_spp_on_commit", || {
        run_cached(
            &on_commit_secure(PrefetcherKind::SppPpf),
            TRACE,
            ExpScale::Quick,
        )
        .prefetch_accuracy()
    });
    mb.bench("fig14/energy_on_commit_suf", || {
        run_cached(&on_commit_suf(kind), TRACE, ExpScale::Quick).energy_nj
    });
    let mix = &multicore_mixes(1)[0];
    mb.bench("fig15/tsb_suf_4core_mix", || {
        run_mix(&timely_secure_suf(kind), mix, ExpScale::Quick).ipcs()
    });
    mb.bench("table1/render", || figures::table1().render());
    mb.bench("table2/render", || figures::table2().render());
    mb.bench("table3/render", || figures::table3().render());
    mb.finish();

    if let Ok(dir) = std::env::var("SECPREF_EXP_DIR") {
        let _ = std::fs::remove_dir_all(dir);
    }
}
