//! Criterion benches: one group per paper table/figure, each running a
//! scaled-down version of the experiment so `cargo bench` exercises every
//! regeneration path end to end. The timings double as simulator
//! throughput tracking.

use criterion::{criterion_group, criterion_main, Criterion};
use secpref_bench::configs::*;
use secpref_bench::figures;
use secpref_bench::runner::{run_cached, ExpScale};
use secpref_types::PrefetcherKind;

/// Single representative trace per class keeps each bench iteration fast;
/// results are process-cached, so criterion timing measures the (cached)
/// regeneration overhead after the first run and the simulation itself on
/// the first.
const TRACE: &str = "bwaves_like";
const IRREGULAR_TRACE: &str = "mcf_like_a";

fn bench_config(c: &mut Criterion, name: &str, cfg: &secpref_types::SystemConfig, trace: &str) {
    c.bench_function(name, |b| {
        b.iter(|| std::hint::black_box(run_cached(cfg, trace, ExpScale::Quick).ipc()))
    });
}

/// Fig. 1 — the three prefetch-point configurations for Berti.
fn fig01_speedup_modes(c: &mut Criterion) {
    let kind = PrefetcherKind::Berti;
    bench_config(
        c,
        "fig01/on_access_non_secure",
        &on_access_nonsecure(kind),
        TRACE,
    );
    bench_config(c, "fig01/on_access_secure", &on_access_secure(kind), TRACE);
    bench_config(c, "fig01/on_commit_secure", &on_commit_secure(kind), TRACE);
}

/// Fig. 3 — APKI accounting path (secure vs non-secure traffic split).
fn fig03_l1d_apki(c: &mut Criterion) {
    bench_config(c, "fig03/non_secure_nopref", &nonsecure_nopref(), TRACE);
    bench_config(c, "fig03/secure_nopref", &secure_nopref(), TRACE);
}

/// Fig. 4 — miss-latency measurement path.
fn fig04_miss_latency(c: &mut Criterion) {
    let cfg = on_access_secure(PrefetcherKind::Berti);
    c.bench_function("fig04/miss_latency_secure_berti", |b| {
        b.iter(|| std::hint::black_box(run_cached(&cfg, TRACE, ExpScale::Quick).l1d_miss_latency()))
    });
}

/// Fig. 5 — the mcf-like deep dive.
fn fig05_mcf_deepdive(c: &mut Criterion) {
    bench_config(
        c,
        "fig05/mcf_secure_berti",
        &on_access_secure(PrefetcherKind::Berti),
        IRREGULAR_TRACE,
    );
}

/// Fig. 6 — shadow-classifier path (commit-late accounting).
fn fig06_mpki_classes(c: &mut Criterion) {
    let cfg = on_commit_secure(PrefetcherKind::Berti);
    c.bench_function("fig06/classified_on_commit", |b| {
        b.iter(|| {
            let r = run_cached(&cfg, TRACE, ExpScale::Quick);
            std::hint::black_box(r.cores[0].class.total())
        })
    });
}

/// Fig. 10 — timely-secure variants.
fn fig10_ts_speedup(c: &mut Criterion) {
    bench_config(
        c,
        "fig10/ts_stride",
        &timely_secure(PrefetcherKind::IpStride),
        TRACE,
    );
    bench_config(c, "fig10/tsb", &timely_secure(PrefetcherKind::Berti), TRACE);
}

/// Fig. 11 — SUF on/off.
fn fig11_suf_speedup(c: &mut Criterion) {
    bench_config(
        c,
        "fig11/on_commit_no_suf",
        &on_commit_secure(PrefetcherKind::Berti),
        TRACE,
    );
    bench_config(
        c,
        "fig11/on_commit_suf",
        &on_commit_suf(PrefetcherKind::Berti),
        TRACE,
    );
}

/// Fig. 12 — per-trace TSB+SUF runs (one SPEC-like, one GAP-like).
fn fig12_per_trace(c: &mut Criterion) {
    let cfg = timely_secure_suf(PrefetcherKind::Berti);
    bench_config(c, "fig12/tsb_suf_spec", &cfg, TRACE);
    bench_config(c, "fig12/tsb_suf_gap", &cfg, "bfs_small");
}

/// Fig. 13 — accuracy accounting.
fn fig13_accuracy(c: &mut Criterion) {
    let cfg = on_commit_secure(PrefetcherKind::SppPpf);
    c.bench_function("fig13/accuracy_spp_on_commit", |b| {
        b.iter(|| {
            std::hint::black_box(run_cached(&cfg, TRACE, ExpScale::Quick).prefetch_accuracy())
        })
    });
}

/// Fig. 14 — energy model.
fn fig14_energy(c: &mut Criterion) {
    let cfg = on_commit_suf(PrefetcherKind::Berti);
    c.bench_function("fig14/energy_on_commit_suf", |b| {
        b.iter(|| std::hint::black_box(run_cached(&cfg, TRACE, ExpScale::Quick).energy_nj))
    });
}

/// Fig. 15 — one 4-core mix end to end.
fn fig15_multicore(c: &mut Criterion) {
    let mix = &multicore_mixes(1)[0];
    let cfg = timely_secure_suf(PrefetcherKind::Berti);
    let mut group = c.benchmark_group("fig15");
    group.sample_size(10);
    group.bench_function("tsb_suf_4core_mix", |b| {
        b.iter(|| {
            std::hint::black_box(secpref_bench::runner::run_mix(&cfg, mix, ExpScale::Quick).ipcs())
        })
    });
    group.finish();
}

/// Tables I–III — static/regenerated tables.
fn tables(c: &mut Criterion) {
    c.bench_function("table1/render", |b| {
        b.iter(|| std::hint::black_box(figures::table1().render()))
    });
    c.bench_function("table2/render", |b| {
        b.iter(|| std::hint::black_box(figures::table2().render()))
    });
    c.bench_function("table3/render", |b| {
        b.iter(|| std::hint::black_box(figures::table3().render()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = fig01_speedup_modes, fig03_l1d_apki, fig04_miss_latency,
        fig05_mcf_deepdive, fig06_mpki_classes, fig10_ts_speedup,
        fig11_suf_speedup, fig12_per_trace, fig13_accuracy, fig14_energy,
        fig15_multicore, tables
}
criterion_main!(benches);
