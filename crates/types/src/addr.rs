//! Byte addresses, cache-line addresses, and instruction pointers.

use std::fmt;

/// Cache line size in bytes (64 B throughout the paper's system).
pub const LINE_SIZE: u64 = 64;

/// Number of block-offset bits within a cache line (`log2(LINE_SIZE)`).
pub const OFFSET_BITS: u32 = 6;

/// A byte address in the simulated virtual address space.
///
/// # Examples
///
/// ```
/// use secpref_types::Addr;
/// let a = Addr::new(0x1000);
/// assert_eq!(a.raw(), 0x1000);
/// assert_eq!((a + 64).line(), a.line().next());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(u64);

impl Addr {
    /// Creates an address from a raw byte address.
    pub const fn new(raw: u64) -> Self {
        Addr(raw)
    }

    /// Returns the raw byte address.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns the cache line containing this address.
    pub const fn line(self) -> LineAddr {
        LineAddr(self.0 >> OFFSET_BITS)
    }

    /// Returns the byte offset within the cache line.
    pub const fn offset(self) -> u64 {
        self.0 & (LINE_SIZE - 1)
    }
}

impl fmt::Debug for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Addr({:#x})", self.0)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::LowerHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<u64> for Addr {
    fn from(raw: u64) -> Self {
        Addr(raw)
    }
}

impl std::ops::Add<u64> for Addr {
    type Output = Addr;
    fn add(self, rhs: u64) -> Addr {
        Addr(self.0.wrapping_add(rhs))
    }
}

impl std::ops::Sub<u64> for Addr {
    type Output = Addr;
    fn sub(self, rhs: u64) -> Addr {
        Addr(self.0.wrapping_sub(rhs))
    }
}

/// A cache-line address: a byte address shifted right by [`OFFSET_BITS`].
///
/// Using a distinct type prevents the classic bug of mixing byte addresses
/// with line numbers in prefetcher delta arithmetic.
///
/// # Examples
///
/// ```
/// use secpref_types::{Addr, LineAddr};
/// let l = Addr::new(0x1040).line();
/// assert_eq!(l, LineAddr::new(0x41));
/// assert_eq!(l.delta(Addr::new(0x1000).line()), 1);
/// assert_eq!(l.offset(-1), LineAddr::new(0x40));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LineAddr(u64);

impl LineAddr {
    /// Creates a line address from a raw line number (byte address >> 6).
    pub const fn new(raw: u64) -> Self {
        LineAddr(raw)
    }

    /// Returns the raw line number.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns the byte address of the first byte of this line.
    pub const fn base_addr(self) -> Addr {
        Addr(self.0 << OFFSET_BITS)
    }

    /// Returns the immediately following line.
    pub const fn next(self) -> LineAddr {
        LineAddr(self.0 + 1)
    }

    /// Returns the line at signed line-delta `d` from this line.
    pub const fn offset(self, d: i64) -> LineAddr {
        LineAddr(self.0.wrapping_add(d as u64))
    }

    /// Returns the signed line delta `self - earlier` as used by
    /// delta-based prefetchers such as Berti and SPP.
    pub const fn delta(self, earlier: LineAddr) -> i64 {
        self.0.wrapping_sub(earlier.0) as i64
    }

    /// Returns the 2 KB spatial region number containing this line
    /// (32 lines per region; Bingo's region granularity).
    pub const fn region_2k(self) -> u64 {
        self.0 >> 5
    }

    /// Returns the line index within its 2 KB region (0..32).
    pub const fn region_2k_offset(self) -> u32 {
        (self.0 & 31) as u32
    }

    /// Returns the 4 KB page number containing this line.
    pub const fn page(self) -> u64 {
        self.0 >> 6
    }

    /// Returns the line index within its 4 KB page (0..64).
    pub const fn page_offset(self) -> u32 {
        (self.0 & 63) as u32
    }
}

impl fmt::Debug for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LineAddr({:#x})", self.0)
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl From<Addr> for LineAddr {
    fn from(a: Addr) -> Self {
        a.line()
    }
}

/// The instruction pointer (program counter) of a load or store.
///
/// Prefetchers key their tables on the IP; it needs no arithmetic beyond
/// hashing, so it is a plain opaque newtype.
///
/// # Examples
///
/// ```
/// use secpref_types::Ip;
/// let ip = Ip::new(0x40_1000);
/// assert_eq!(ip.raw(), 0x40_1000);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Ip(u64);

impl Ip {
    /// Creates an instruction pointer from its raw value.
    pub const fn new(raw: u64) -> Self {
        Ip(raw)
    }

    /// Returns the raw value.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns the low `bits` bits — the common table-index hash
    /// used by IP-indexed prefetcher tables.
    pub const fn index_bits(self, bits: u32) -> usize {
        (self.0 & ((1u64 << bits) - 1)) as usize
    }
}

impl fmt::Debug for Ip {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Ip({:#x})", self.0)
    }
}

impl fmt::Display for Ip {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl From<u64> for Ip {
    fn from(raw: u64) -> Self {
        Ip(raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_line_round_trip() {
        let a = Addr::new(0x12345);
        assert_eq!(a.line().base_addr().raw(), 0x12345 & !(LINE_SIZE - 1));
        assert_eq!(a.offset(), 0x12345 % LINE_SIZE);
    }

    #[test]
    fn line_delta_signed() {
        let a = LineAddr::new(100);
        let b = LineAddr::new(97);
        assert_eq!(a.delta(b), 3);
        assert_eq!(b.delta(a), -3);
        assert_eq!(b.offset(3), a);
        assert_eq!(a.offset(-3), b);
    }

    #[test]
    fn region_decomposition() {
        let l = LineAddr::new(0x1234);
        assert_eq!(l.region_2k() * 32 + l.region_2k_offset() as u64, l.raw());
        assert_eq!(l.page() * 64 + l.page_offset() as u64, l.raw());
    }

    #[test]
    fn addr_arith() {
        let a = Addr::new(0x1000);
        assert_eq!((a + 0x40).line(), a.line().next());
        assert_eq!(a + 8 - 8, a);
    }

    #[test]
    fn display_is_hex() {
        assert_eq!(format!("{}", Addr::new(255)), "0xff");
        assert_eq!(format!("{}", LineAddr::new(255)), "0xff");
        assert_eq!(format!("{:x}", Addr::new(255)), "ff");
    }

    #[test]
    fn ip_index_bits() {
        let ip = Ip::new(0xABCD);
        assert_eq!(ip.index_bits(8), 0xCD);
        assert_eq!(ip.index_bits(4), 0xD);
    }
}
