//! Small, deterministic, dependency-free pseudo-random number generators.
//!
//! The workspace must build and test with no network access, so it cannot
//! depend on the `rand` crate. Everything that needs randomness — trace
//! generators, deterministic 4-core mix selection, randomized tests — uses
//! these generators instead. Both are well-known public-domain designs:
//!
//! * [`SplitMix64`] — Steele/Lea/Flood's 64-bit mixer; used to expand a
//!   single `u64` seed into a full generator state.
//! * [`Xoshiro256ss`] — Blackman/Vigna's xoshiro256** 1.0, the general
//!   workhorse generator (passes BigCrush, 2^256-1 period).
//!
//! Determinism contract: for a fixed seed, every method produces the same
//! sequence on every platform and every run. Experiment reproducibility
//! (bit-identical traces, hence bit-identical `SimReport`s) depends on this,
//! so the output streams are locked by unit tests against reference values.
//!
//! # Examples
//!
//! ```
//! use secpref_types::rng::Xoshiro256ss;
//!
//! let mut a = Xoshiro256ss::seed_from_u64(42);
//! let mut b = Xoshiro256ss::seed_from_u64(42);
//! assert_eq!(a.next_u64(), b.next_u64());
//! assert!(a.gen_index(10) < 10);
//! ```

/// SplitMix64: expands a 64-bit seed into a stream of well-mixed values.
///
/// Primarily used to seed [`Xoshiro256ss`], but usable standalone where a
/// tiny generator suffices.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Returns the next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256** 1.0 — the workspace's general-purpose PRNG.
///
/// Seeded from a single `u64` via [`SplitMix64`], exactly as the xoshiro
/// authors recommend (never seed the state directly from correlated or
/// mostly-zero values).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Xoshiro256ss {
    s: [u64; 4],
}

impl Xoshiro256ss {
    /// Creates a generator whose 256-bit state is expanded from `seed`.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Xoshiro256ss {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// Returns the next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `0..bound` (Lemire's multiply-shift rejection-free
    /// variant is overkill here; modulo over the full 64-bit output keeps
    /// the bias below 2⁻⁴⁰ for every bound the workspace uses).
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn gen_u64(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_u64 bound must be positive");
        self.next_u64() % bound
    }

    /// Uniform value in `0..bound`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn gen_u32(&mut self, bound: u32) -> u32 {
        self.gen_u64(bound as u64) as u32
    }

    /// Uniform index in `0..len`, for slice indexing.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`.
    pub fn gen_index(&mut self, len: usize) -> usize {
        self.gen_u64(len as u64) as usize
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Uniform random boolean.
    pub fn gen_flip(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Fisher–Yates shuffle of `xs` in place.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.gen_index(i + 1);
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference values from the xoshiro authors' C implementation
    /// (splitmix64.c), locking cross-platform determinism.
    #[test]
    fn splitmix_reference_stream() {
        let mut sm = SplitMix64::new(0);
        assert_eq!(sm.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(sm.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(sm.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn xoshiro_is_deterministic_and_distinct_per_seed() {
        let a: Vec<u64> = {
            let mut r = Xoshiro256ss::seed_from_u64(7);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Xoshiro256ss::seed_from_u64(7);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = Xoshiro256ss::seed_from_u64(8);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn bounds_respected() {
        let mut r = Xoshiro256ss::seed_from_u64(1);
        for _ in 0..10_000 {
            assert!(r.gen_u64(17) < 17);
            assert!(r.gen_index(3) < 3);
            let f = r.gen_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = Xoshiro256ss::seed_from_u64(2);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.25)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.25).abs() < 0.01, "{frac}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Xoshiro256ss::seed_from_u64(3);
        let mut xs: Vec<u32> = (0..50).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert_ne!(
            xs, sorted,
            "50 elements virtually never shuffle to identity"
        );
    }

    #[test]
    fn flip_is_roughly_fair() {
        let mut r = Xoshiro256ss::seed_from_u64(4);
        let heads = (0..100_000).filter(|_| r.gen_flip()).count();
        assert!((heads as f64 / 100_000.0 - 0.5).abs() < 0.01);
    }
}
