//! Cache levels and the SUF 2-bit hit-level encoding.

use std::fmt;

/// A level of the simulated memory hierarchy.
///
/// The paper's convention: L1D is the *lowest* level, LLC the highest cache
/// level, DRAM below everything.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CacheLevel {
    /// First-level data cache (48 KB in the baseline).
    L1d,
    /// Second-level unified cache (512 KB).
    L2,
    /// Last-level cache (2 MB per core bank).
    Llc,
    /// Main memory.
    Dram,
}

impl CacheLevel {
    /// All levels from lowest (L1D) to DRAM.
    pub const ALL: [CacheLevel; 4] = [
        CacheLevel::L1d,
        CacheLevel::L2,
        CacheLevel::Llc,
        CacheLevel::Dram,
    ];

    /// Returns the next level further from the core, or `None` for DRAM.
    pub const fn next(self) -> Option<CacheLevel> {
        match self {
            CacheLevel::L1d => Some(CacheLevel::L2),
            CacheLevel::L2 => Some(CacheLevel::Llc),
            CacheLevel::Llc => Some(CacheLevel::Dram),
            CacheLevel::Dram => None,
        }
    }

    /// Short display name matching the paper's figures.
    pub const fn name(self) -> &'static str {
        match self {
            CacheLevel::L1d => "L1D",
            CacheLevel::L2 => "L2",
            CacheLevel::Llc => "LLC",
            CacheLevel::Dram => "DRAM",
        }
    }
}

impl fmt::Display for CacheLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The SUF *hit level*: which level of the hierarchy served a speculative
/// load's data (Section IV of the paper).
///
/// Encoded in 2 bits and stored in the load-queue entry. `L1d` covers both
/// the GM and the L1D, which are accessed in parallel.
///
/// # Examples
///
/// ```
/// use secpref_types::HitLevel;
/// assert_eq!(HitLevel::decode(0b10), HitLevel::Llc);
/// assert_eq!(HitLevel::Dram.encode(), 0b11);
/// assert!(HitLevel::L2 < HitLevel::Dram);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum HitLevel {
    /// Data came from L1D or the GM (encoding `00`).
    L1d,
    /// Data came from L2 (encoding `01`).
    L2,
    /// Data came from the LLC (encoding `10`).
    Llc,
    /// Data came from DRAM (encoding `11`).
    Dram,
}

impl HitLevel {
    /// Returns the 2-bit hardware encoding.
    pub const fn encode(self) -> u8 {
        match self {
            HitLevel::L1d => 0b00,
            HitLevel::L2 => 0b01,
            HitLevel::Llc => 0b10,
            HitLevel::Dram => 0b11,
        }
    }

    /// Decodes the 2-bit hardware encoding.
    ///
    /// # Panics
    ///
    /// Panics if `bits > 0b11` — the hardware field is two bits wide.
    pub const fn decode(bits: u8) -> HitLevel {
        match bits {
            0b00 => HitLevel::L1d,
            0b01 => HitLevel::L2,
            0b10 => HitLevel::Llc,
            0b11 => HitLevel::Dram,
            _ => panic!("hit-level encoding is 2 bits"),
        }
    }

    /// Converts a serving cache level into a hit level.
    pub const fn from_level(level: CacheLevel) -> HitLevel {
        match level {
            CacheLevel::L1d => HitLevel::L1d,
            CacheLevel::L2 => HitLevel::L2,
            CacheLevel::Llc => HitLevel::Llc,
            CacheLevel::Dram => HitLevel::Dram,
        }
    }

    /// The cache level this hit level names.
    pub const fn level(self) -> CacheLevel {
        match self {
            HitLevel::L1d => CacheLevel::L1d,
            HitLevel::L2 => CacheLevel::L2,
            HitLevel::Llc => CacheLevel::Llc,
            HitLevel::Dram => CacheLevel::Dram,
        }
    }
}

impl fmt::Display for HitLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.level().name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trip() {
        for bits in 0..4u8 {
            assert_eq!(HitLevel::decode(bits).encode(), bits);
        }
    }

    #[test]
    fn level_chain() {
        assert_eq!(CacheLevel::L1d.next(), Some(CacheLevel::L2));
        assert_eq!(CacheLevel::L2.next(), Some(CacheLevel::Llc));
        assert_eq!(CacheLevel::Llc.next(), Some(CacheLevel::Dram));
        assert_eq!(CacheLevel::Dram.next(), None);
    }

    #[test]
    fn hit_level_orders_by_distance() {
        assert!(HitLevel::L1d < HitLevel::L2);
        assert!(HitLevel::L2 < HitLevel::Llc);
        assert!(HitLevel::Llc < HitLevel::Dram);
    }

    #[test]
    fn from_level_round_trip() {
        for lvl in CacheLevel::ALL {
            assert_eq!(HitLevel::from_level(lvl).level(), lvl);
        }
    }
}
