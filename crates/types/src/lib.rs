//! Shared types and configuration for the secure-prefetch simulator.
//!
//! This crate defines the vocabulary used by every other crate in the
//! workspace: addresses and cache-line addresses, cache levels and the 2-bit
//! *hit level* encoding used by the Secure Update Filter (SUF), memory
//! request/access kinds, and the [`config`] module holding the Table II
//! baseline system parameters of the paper.
//!
//! # Examples
//!
//! ```
//! use secpref_types::{Addr, LineAddr, HitLevel};
//!
//! let a = Addr::new(0x1234);
//! let line = a.line();
//! assert_eq!(line, LineAddr::new(0x48));
//! assert_eq!(HitLevel::L1d.encode(), 0b00);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod addr;
pub mod config;
pub mod hist;
pub mod level;
pub mod req;
pub mod rng;
pub mod sampling;
pub mod varint;

pub use addr::{Addr, Ip, LineAddr, LINE_SIZE, OFFSET_BITS};
pub use config::{
    CacheConfig, CoreConfig, CorePolicy, DramConfig, PrefetchMode, PrefetcherKind, SecureMode,
    SystemConfig, TlbConfig,
};
pub use hist::Hist;
pub use level::{CacheLevel, HitLevel};
pub use req::{AccessKind, CoreId, FillInfo, PrefetchRequest};
pub use sampling::{MetricStats, SamplingConfig, SamplingSummary};

/// Simulation time, measured in core clock cycles.
pub type Cycle = u64;
