//! System configuration — the Table II baseline parameters of the paper,
//! expressed as plain data structures with builder-style setters.

use crate::Cycle;

/// Out-of-order core parameters (Table II, "Core" row).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct CoreConfig {
    /// Instructions fetched/dispatched per cycle (6 in the baseline).
    pub fetch_width: usize,
    /// Instructions retired per cycle (4 in the baseline).
    pub retire_width: usize,
    /// Reorder-buffer entries (352 in the baseline).
    pub rob_entries: usize,
    /// Load-queue entries (128, matching the SUF/X-LQ sizing).
    pub lq_entries: usize,
    /// Extra pipeline depth between fetch and execute, modelling the
    /// decoupled front end (cycles an instruction waits before it may issue).
    pub dispatch_latency: Cycle,
    /// Pipeline-refill penalty after a branch misprediction, on top of
    /// waiting for the branch to resolve at execute.
    pub mispredict_penalty: Cycle,
    /// Maximum loads the core may issue to the memory system per cycle.
    pub load_issue_width: usize,
}

impl Default for CoreConfig {
    fn default() -> Self {
        CoreConfig {
            fetch_width: 6,
            retire_width: 4,
            rob_entries: 352,
            lq_entries: 128,
            dispatch_latency: 4,
            mispredict_penalty: 12,
            load_issue_width: 2,
        }
    }
}

/// Replacement policy choice for a cache level (Table II baseline: LRU).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum ReplacementChoice {
    /// True least-recently-used.
    #[default]
    Lru,
    /// Static re-reference interval prediction.
    Srrip,
    /// Pseudo-random victims.
    Random,
}

/// Parameters for one cache level (Table II, L1D/L2/LLC rows).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Associativity (ways per set).
    pub ways: usize,
    /// Access (hit) latency in cycles.
    pub latency: Cycle,
    /// Number of miss status holding registers.
    pub mshrs: usize,
    /// Tag/data port bandwidth: accesses accepted per cycle. Demand loads,
    /// prefetches, commit writes, and re-fetches all compete for these slots
    /// — the contention mechanism behind Fig. 4/5 of the paper.
    pub ports_per_cycle: usize,
    /// Maximum queued requests waiting for a port (read-queue depth).
    pub queue_depth: usize,
    /// Replacement policy (LRU in the Table II baseline).
    pub replacement: ReplacementChoice,
}

impl CacheConfig {
    /// Number of sets implied by size, ways, and the 64 B line size.
    pub fn sets(&self) -> usize {
        self.size_bytes / (self.ways * crate::LINE_SIZE as usize)
    }

    /// Total number of cache lines.
    pub fn lines(&self) -> usize {
        self.size_bytes / crate::LINE_SIZE as usize
    }

    /// The baseline 48 KB, 12-way, 5-cycle, 16-MSHR L1D.
    pub fn baseline_l1d() -> Self {
        CacheConfig {
            size_bytes: 48 * 1024,
            ways: 12,
            latency: 5,
            mshrs: 16,
            ports_per_cycle: 2,
            queue_depth: 32,
            replacement: ReplacementChoice::Lru,
        }
    }

    /// The baseline 512 KB, 8-way, 15-cycle, 32-MSHR L2.
    pub fn baseline_l2() -> Self {
        CacheConfig {
            size_bytes: 512 * 1024,
            ways: 8,
            latency: 15,
            mshrs: 32,
            ports_per_cycle: 2,
            queue_depth: 48,
            replacement: ReplacementChoice::Lru,
        }
    }

    /// The baseline 2 MB/16-way/35-cycle/64-MSHR LLC bank (one per core).
    ///
    /// The per-core scaling factor rounds up to a power of two so the set
    /// count stays a power of two for any core count (a 3- or 24-core mix
    /// gets the next larger LLC rather than a non-indexable one).
    pub fn baseline_llc(cores: usize) -> Self {
        let scale = cores.max(1).next_power_of_two();
        CacheConfig {
            size_bytes: 2 * 1024 * 1024 * scale,
            ways: 16,
            latency: 35,
            mshrs: 64 * scale,
            ports_per_cycle: 2 * scale,
            queue_depth: 64 * scale,
            replacement: ReplacementChoice::Lru,
        }
    }

    /// The 2 KB, fully-associative, 1-cycle GhostMinion GM cache.
    pub fn ghostminion_gm() -> Self {
        CacheConfig {
            size_bytes: 2 * 1024,
            ways: 32,
            latency: 1,
            mshrs: 16,
            ports_per_cycle: 4,
            queue_depth: 32,
            replacement: ReplacementChoice::Lru,
        }
    }
}

/// Two-level data-TLB parameters (Table II, TLBs row). Disabled by
/// default so headline results keep the flat-translation calibration;
/// enable to model translation latency.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct TlbConfig {
    /// Model translation latency at all.
    pub enabled: bool,
    /// L1 dTLB entries (64 in the baseline).
    pub l1_entries: usize,
    /// L1 dTLB associativity.
    pub l1_ways: usize,
    /// L1 dTLB latency, cycles.
    pub l1_latency: Cycle,
    /// STLB entries (1536 in the baseline).
    pub stlb_entries: usize,
    /// STLB associativity.
    pub stlb_ways: usize,
    /// STLB latency, cycles.
    pub stlb_latency: Cycle,
    /// Page-table walk latency on a full miss, cycles.
    pub walk_latency: Cycle,
}

impl Default for TlbConfig {
    fn default() -> Self {
        TlbConfig {
            enabled: false,
            l1_entries: 64,
            l1_ways: 4,
            l1_latency: 1,
            stlb_entries: 1536,
            stlb_ways: 12,
            stlb_latency: 8,
            walk_latency: 120,
        }
    }
}

/// DRAM timing parameters (Table II, DRAM row), in core cycles at 4 GHz.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct DramConfig {
    /// Number of banks the channel interleaves over.
    pub banks: usize,
    /// Row-buffer size in bytes (4 KB open-page).
    pub row_bytes: usize,
    /// Row-precharge latency, cycles (12.5 ns at 4 GHz = 50).
    pub t_rp: Cycle,
    /// Row-to-column (activate) latency, cycles.
    pub t_rcd: Cycle,
    /// Column-access latency, cycles.
    pub t_cas: Cycle,
    /// Data-bus occupancy per 64 B transfer, cycles (6400 MT/s, 8 B bus:
    /// 64 B / (6.4 GT/s * 8 B) at 4 GHz ≈ 5 cycles).
    pub bus_cycles_per_line: Cycle,
    /// Maximum requests buffered in the memory controller per channel.
    pub queue_depth: usize,
    /// Write-queue high watermark as (num, den): writes drain when the
    /// write queue is ≥ num/den full (7/8 in the baseline).
    pub write_watermark: (usize, usize),
}

impl Default for DramConfig {
    fn default() -> Self {
        DramConfig {
            banks: 8,
            row_bytes: 4096,
            t_rp: 50,
            t_rcd: 50,
            t_cas: 50,
            bus_cycles_per_line: 5,
            queue_depth: 64,
            write_watermark: (7, 8),
        }
    }
}

/// Which hardware prefetcher is instantiated (Section VI / Table III).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PrefetcherKind {
    /// No prefetching.
    None,
    /// Classic IP-stride (the Intel/AMD L1D prefetcher), at L1D.
    IpStride,
    /// Instruction-pointer classifier prefetching (ISCA 2020), at L1D.
    Ipcp,
    /// Bingo spatial prefetcher (HPCA 2019), at L2.
    Bingo,
    /// Signature-path prefetcher + perceptron filter (ISCA 2019), at L2.
    SppPpf,
    /// Berti local-delta prefetcher (MICRO 2022), at L1D.
    Berti,
}

impl PrefetcherKind {
    /// All real prefetchers, in the order the paper's figures list them.
    pub const EVALUATED: [PrefetcherKind; 5] = [
        PrefetcherKind::IpStride,
        PrefetcherKind::Ipcp,
        PrefetcherKind::Bingo,
        PrefetcherKind::SppPpf,
        PrefetcherKind::Berti,
    ];

    /// True if the prefetcher observes and fills the L1D (IP-stride, IPCP,
    /// Berti); false for the L2 prefetchers (Bingo, SPP+PPF).
    pub const fn is_l1_prefetcher(self) -> bool {
        matches!(
            self,
            PrefetcherKind::IpStride | PrefetcherKind::Ipcp | PrefetcherKind::Berti
        )
    }

    /// Display name used in figures.
    pub const fn name(self) -> &'static str {
        match self {
            PrefetcherKind::None => "No-Pref",
            PrefetcherKind::IpStride => "IP-Stride",
            PrefetcherKind::Ipcp => "IPCP",
            PrefetcherKind::Bingo => "Bingo",
            PrefetcherKind::SppPpf => "SPP+PPF",
            PrefetcherKind::Berti => "Berti",
        }
    }
}

impl std::fmt::Display for PrefetcherKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// When the prefetcher trains and triggers (Section III-B).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PrefetchMode {
    /// Train and trigger on (speculative) cache access — fast but insecure.
    OnAccess,
    /// Train and trigger at instruction commit — secure but commit-late.
    OnCommit,
}

impl PrefetchMode {
    /// Display name used in figures.
    pub const fn name(self) -> &'static str {
        match self {
            PrefetchMode::OnAccess => "on-access",
            PrefetchMode::OnCommit => "on-commit",
        }
    }
}

impl std::fmt::Display for PrefetchMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Whether the cache system is the non-secure baseline or GhostMinion.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SecureMode {
    /// Conventional (insecure) cache hierarchy.
    NonSecure,
    /// GhostMinion invisible-speculation secure cache system.
    GhostMinion,
}

impl SecureMode {
    /// True for GhostMinion.
    pub const fn is_secure(self) -> bool {
        matches!(self, SecureMode::GhostMinion)
    }
}

/// Per-core policy knobs for heterogeneous multi-core mixes: which
/// prefetcher one core runs, when it trains, and whether that core's
/// speculation is secured. Geometry (cache sizes, DRAM timing, core
/// width) stays global — heterogeneity is about policy, matching the
/// attacker/victim co-scheduling scenarios where one hart runs a secure
/// victim while co-runners keep insecure fast paths.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CorePolicy {
    /// Secure or non-secure cache system for this core.
    pub secure: SecureMode,
    /// Which prefetcher this core runs.
    pub prefetcher: PrefetcherKind,
    /// On-access or on-commit training/triggering for this core.
    pub prefetch_mode: PrefetchMode,
    /// Secure Update Filter on this core (requires GhostMinion).
    pub suf: bool,
    /// Timely-secure wrapper on this core (requires on-commit + prefetcher).
    pub timely_secure: bool,
}

impl CorePolicy {
    /// The policy expressed by a config's top-level knobs.
    pub fn of(cfg: &SystemConfig) -> Self {
        CorePolicy {
            secure: cfg.secure,
            prefetcher: cfg.prefetcher,
            prefetch_mode: cfg.prefetch_mode,
            suf: cfg.suf,
            timely_secure: cfg.timely_secure,
        }
    }

    /// Validates this policy's internal consistency (same rules as the
    /// top-level knobs).
    pub fn validate(&self) -> Result<(), String> {
        if self.suf && !self.secure.is_secure() {
            return Err("SUF requires the GhostMinion secure cache system".into());
        }
        if self.timely_secure && self.prefetch_mode != PrefetchMode::OnCommit {
            return Err("timely-secure prefetching applies to on-commit mode".into());
        }
        if self.timely_secure && self.prefetcher == PrefetcherKind::None {
            return Err("timely-secure prefetching requires a prefetcher".into());
        }
        Ok(())
    }
}

/// Full single-core (or per-core) system configuration.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct SystemConfig {
    /// Core parameters.
    pub core: CoreConfig,
    /// L1D parameters.
    pub l1d: CacheConfig,
    /// L2 parameters.
    pub l2: CacheConfig,
    /// LLC parameters (shared in multi-core).
    pub llc: CacheConfig,
    /// GM cache parameters (used only under GhostMinion).
    pub gm: CacheConfig,
    /// Data-TLB parameters (disabled by default).
    pub tlb: TlbConfig,
    /// DRAM parameters (shared in multi-core).
    pub dram: DramConfig,
    /// Secure or non-secure cache system.
    pub secure: SecureMode,
    /// Which prefetcher to run.
    pub prefetcher: PrefetcherKind,
    /// On-access or on-commit training/triggering.
    pub prefetch_mode: PrefetchMode,
    /// Enable the Secure Update Filter (paper contribution #1).
    pub suf: bool,
    /// Enable the timely-secure mechanism for the chosen prefetcher:
    /// TSB for Berti, lateness-adaptive distance for IP-stride/IPCP,
    /// skip-k for SPP+PPF, tempo for Bingo (paper contribution #2).
    pub timely_secure: bool,
    /// Number of cores sharing the LLC and DRAM.
    pub cores: usize,
    /// Optional per-core policy overrides for heterogeneous mixes. Empty
    /// means every core follows the top-level `secure`/`prefetcher`/
    /// `prefetch_mode`/`suf`/`timely_secure` knobs (the homogeneous case);
    /// non-empty must have exactly `cores` entries.
    pub per_core: Vec<CorePolicy>,
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig::baseline(1)
    }
}

impl SystemConfig {
    /// The Table II baseline for `cores` cores, non-secure, no prefetching.
    pub fn baseline(cores: usize) -> Self {
        SystemConfig {
            core: CoreConfig::default(),
            l1d: CacheConfig::baseline_l1d(),
            l2: CacheConfig::baseline_l2(),
            llc: CacheConfig::baseline_llc(cores),
            gm: CacheConfig::ghostminion_gm(),
            tlb: TlbConfig::default(),
            dram: DramConfig::default(),
            secure: SecureMode::NonSecure,
            prefetcher: PrefetcherKind::None,
            prefetch_mode: PrefetchMode::OnAccess,
            suf: false,
            timely_secure: false,
            cores,
            per_core: Vec::new(),
        }
    }

    /// The effective policy for `core`: the per-core override when one is
    /// configured, otherwise the top-level knobs.
    ///
    /// # Panics
    ///
    /// Panics if `core >= cores` when per-core overrides are configured.
    pub fn policy(&self, core: usize) -> CorePolicy {
        if self.per_core.is_empty() {
            CorePolicy::of(self)
        } else {
            self.per_core[core]
        }
    }

    /// Sets per-core policy overrides (builder style). Pass an empty vec
    /// to return to homogeneous top-level knobs.
    pub fn with_core_policies(mut self, policies: Vec<CorePolicy>) -> Self {
        self.per_core = policies;
        self
    }

    /// Sets the secure mode (builder style).
    pub fn with_secure(mut self, secure: SecureMode) -> Self {
        self.secure = secure;
        self
    }

    /// Sets the prefetcher kind (builder style).
    pub fn with_prefetcher(mut self, kind: PrefetcherKind) -> Self {
        self.prefetcher = kind;
        self
    }

    /// Sets the prefetch mode (builder style).
    pub fn with_mode(mut self, mode: PrefetchMode) -> Self {
        self.prefetch_mode = mode;
        self
    }

    /// Enables/disables SUF (builder style).
    pub fn with_suf(mut self, on: bool) -> Self {
        self.suf = on;
        self
    }

    /// Enables/disables the timely-secure mechanism (builder style).
    pub fn with_timely_secure(mut self, on: bool) -> Self {
        self.timely_secure = on;
        self
    }

    /// Enables/disables TLB latency modelling (builder style).
    pub fn with_tlb(mut self, on: bool) -> Self {
        self.tlb.enabled = on;
        self
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message when a parameter combination is
    /// meaningless (zero-sized structures, SUF without GhostMinion,
    /// timely-secure with on-access mode, non-power-of-two sets).
    pub fn validate(&self) -> Result<(), String> {
        if self.cores == 0 {
            return Err("cores must be >= 1".into());
        }
        for (name, c) in [
            ("l1d", &self.l1d),
            ("l2", &self.l2),
            ("llc", &self.llc),
            ("gm", &self.gm),
        ] {
            if c.sets() == 0 || !c.sets().is_power_of_two() {
                return Err(format!("{name}: set count must be a power of two"));
            }
            if c.ways == 0 || c.mshrs == 0 || c.ports_per_cycle == 0 {
                return Err(format!("{name}: ways/mshrs/ports must be nonzero"));
            }
        }
        CorePolicy::of(self).validate()?;
        if !self.per_core.is_empty() {
            if self.per_core.len() != self.cores {
                return Err(format!(
                    "per_core has {} entries but cores = {}",
                    self.per_core.len(),
                    self.cores
                ));
            }
            for (i, p) in self.per_core.iter().enumerate() {
                p.validate().map_err(|e| format!("core {i}: {e}"))?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_matches_table_ii() {
        let c = SystemConfig::baseline(1);
        assert_eq!(c.l1d.size_bytes, 48 * 1024);
        assert_eq!(c.l1d.ways, 12);
        assert_eq!(c.l1d.latency, 5);
        assert_eq!(c.l1d.mshrs, 16);
        assert_eq!(c.l1d.sets(), 64);
        assert_eq!(c.l1d.lines(), 768); // the SUF L2-writeback-bit count
        assert_eq!(c.l2.sets(), 1024);
        assert_eq!(c.llc.sets(), 2048);
        assert_eq!(c.gm.lines(), 32); // 2 KB GM
        assert_eq!(c.core.rob_entries, 352);
        assert_eq!(c.core.lq_entries, 128);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn llc_scales_with_cores() {
        let c = SystemConfig::baseline(4);
        assert_eq!(c.llc.size_bytes, 8 * 1024 * 1024);
        assert_eq!(c.llc.mshrs, 256);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validate_rejects_suf_without_ghostminion() {
        let c = SystemConfig::baseline(1).with_suf(true);
        assert!(c.validate().is_err());
        let c = SystemConfig::baseline(1)
            .with_secure(SecureMode::GhostMinion)
            .with_suf(true);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validate_rejects_ts_on_access() {
        let c = SystemConfig::baseline(1)
            .with_prefetcher(PrefetcherKind::Berti)
            .with_mode(PrefetchMode::OnAccess)
            .with_timely_secure(true);
        assert!(c.validate().is_err());
        let c = c.with_mode(PrefetchMode::OnCommit);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validate_rejects_zero_cores() {
        let mut c = SystemConfig::baseline(1);
        c.cores = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn llc_rounds_non_pow2_core_counts_up() {
        // 24 cores would give a non-power-of-two set count if scaled
        // linearly; the baseline rounds the scale to 32.
        let c = SystemConfig::baseline(24);
        assert_eq!(c.llc.size_bytes, 2 * 1024 * 1024 * 32);
        assert!(c.llc.sets().is_power_of_two());
        assert!(c.validate().is_ok());
        for cores in [1usize, 2, 4, 8, 16, 32, 64] {
            // Power-of-two counts are unchanged by the rounding.
            assert_eq!(
                CacheConfig::baseline_llc(cores).size_bytes,
                2 * 1024 * 1024 * cores
            );
        }
    }

    #[test]
    fn policy_defaults_to_top_level_knobs() {
        let c = SystemConfig::baseline(4)
            .with_secure(SecureMode::GhostMinion)
            .with_prefetcher(PrefetcherKind::Berti)
            .with_mode(PrefetchMode::OnCommit)
            .with_suf(true);
        for core in 0..4 {
            assert_eq!(c.policy(core), CorePolicy::of(&c));
        }
        assert_eq!(c.policy(0).secure, SecureMode::GhostMinion);
        assert!(c.policy(0).suf);
    }

    #[test]
    fn per_core_policies_override_and_validate() {
        let secure = CorePolicy {
            secure: SecureMode::GhostMinion,
            prefetcher: PrefetcherKind::IpStride,
            prefetch_mode: PrefetchMode::OnCommit,
            suf: true,
            timely_secure: false,
        };
        let insecure = CorePolicy {
            secure: SecureMode::NonSecure,
            prefetcher: PrefetcherKind::Berti,
            prefetch_mode: PrefetchMode::OnAccess,
            suf: false,
            timely_secure: false,
        };
        let c = SystemConfig::baseline(2).with_core_policies(vec![secure, insecure]);
        assert!(c.validate().is_ok());
        assert_eq!(c.policy(0), secure);
        assert_eq!(c.policy(1), insecure);

        // Wrong length is rejected.
        let c = SystemConfig::baseline(3).with_core_policies(vec![secure, insecure]);
        assert!(c.validate().is_err());

        // Per-core SUF without GhostMinion is rejected with the core index.
        let bad = CorePolicy {
            suf: true,
            ..insecure
        };
        let c = SystemConfig::baseline(2).with_core_policies(vec![secure, bad]);
        let err = c.validate().unwrap_err();
        assert!(err.contains("core 1"), "{err}");
    }

    #[test]
    fn prefetcher_level_placement() {
        assert!(PrefetcherKind::IpStride.is_l1_prefetcher());
        assert!(PrefetcherKind::Ipcp.is_l1_prefetcher());
        assert!(PrefetcherKind::Berti.is_l1_prefetcher());
        assert!(!PrefetcherKind::Bingo.is_l1_prefetcher());
        assert!(!PrefetcherKind::SppPpf.is_l1_prefetcher());
    }

    #[test]
    fn debug_repr_names_every_knob() {
        let c = SystemConfig::baseline(2)
            .with_secure(SecureMode::GhostMinion)
            .with_prefetcher(PrefetcherKind::Berti)
            .with_mode(PrefetchMode::OnCommit)
            .with_suf(true)
            .with_timely_secure(true);
        let s = format!("{c:?}");
        assert!(s.contains("GhostMinion"));
        assert!(s.contains("Berti"));
        assert!(s.contains("OnCommit"));
    }

    #[test]
    fn configs_are_hashable_map_keys() {
        use std::collections::HashMap;
        let mut m: HashMap<SystemConfig, u32> = HashMap::new();
        m.insert(SystemConfig::baseline(1), 1);
        m.insert(SystemConfig::baseline(2), 2);
        assert_eq!(m.get(&SystemConfig::baseline(1)), Some(&1));
        assert_eq!(m.len(), 2);
    }
}
