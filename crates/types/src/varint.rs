//! LEB128 variable-length integer encoding, shared by the flat `.strace`
//! serializer (v2 records) and the chunked trace store codec.
//!
//! Unsigned values are encoded 7 bits per byte, low bits first, with the
//! high bit as a continuation flag (at most 10 bytes for a `u64`). Signed
//! values go through the zigzag mapping first so small negative deltas
//! stay short.

use std::io::{self, Read, Write};

/// Maximum encoded length of a `u64` varint.
pub const MAX_VARINT_LEN: usize = 10;

/// Appends the LEB128 encoding of `v` to `buf`.
pub fn encode_u64(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Decodes a LEB128 `u64` from `buf` starting at `*pos`, advancing `*pos`
/// past it. Returns `None` on truncation or a >10-byte (malformed) run.
pub fn decode_u64(buf: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let byte = *buf.get(*pos)?;
        *pos += 1;
        if shift >= 64 {
            return None; // malformed: more than 10 continuation bytes
        }
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
    }
}

/// Writes the LEB128 encoding of `v` to an [`io::Write`].
///
/// # Errors
///
/// Propagates writer errors.
pub fn write_u64(w: &mut impl Write, v: u64) -> io::Result<()> {
    let mut buf = Vec::with_capacity(MAX_VARINT_LEN);
    encode_u64(&mut buf, v);
    w.write_all(&buf)
}

/// Reads a LEB128 `u64` from an [`io::Read`].
///
/// # Errors
///
/// Returns `InvalidData` on a malformed run and propagates reader errors
/// (including `UnexpectedEof` on truncation).
pub fn read_u64(r: &mut impl Read) -> io::Result<u64> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let mut b = [0u8; 1];
        r.read_exact(&mut b)?;
        if shift >= 64 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "varint too long",
            ));
        }
        v |= u64::from(b[0] & 0x7f) << shift;
        if b[0] & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Maps a signed value to an unsigned one with small absolute values
/// staying small (`0, -1, 1, -2, …` → `0, 1, 2, 3, …`).
pub const fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
pub const fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_interesting_values() {
        let cases = [
            0u64,
            1,
            127,
            128,
            16_383,
            16_384,
            u32::MAX as u64,
            u64::MAX,
            0xDEAD_BEEF_CAFE_F00D,
        ];
        for &v in &cases {
            let mut buf = Vec::new();
            encode_u64(&mut buf, v);
            let mut pos = 0;
            assert_eq!(decode_u64(&buf, &mut pos), Some(v));
            assert_eq!(pos, buf.len());
            // io path agrees with the slice path
            let mut io_buf = Vec::new();
            write_u64(&mut io_buf, v).unwrap();
            assert_eq!(io_buf, buf);
            assert_eq!(read_u64(&mut io_buf.as_slice()).unwrap(), v);
        }
    }

    #[test]
    fn zigzag_round_trips() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN, -123_456_789] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
    }

    #[test]
    fn rejects_malformed_runs() {
        let bad = [0xFFu8; 11];
        let mut pos = 0;
        assert_eq!(decode_u64(&bad, &mut pos), None);
        assert!(read_u64(&mut bad.as_slice()).is_err());
        // Truncated continuation
        let trunc = [0x80u8];
        let mut pos = 0;
        assert_eq!(decode_u64(&trunc, &mut pos), None);
        assert!(read_u64(&mut trunc.as_slice()).is_err());
    }
}
