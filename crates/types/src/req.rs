//! Memory request and fill metadata shared between the core, the cache
//! hierarchy, GhostMinion, and the prefetchers.

use crate::{CacheLevel, Cycle, HitLevel, Ip, LineAddr};
use std::fmt;

/// Identifies a core in a multi-core simulation.
pub type CoreId = usize;

/// The kind of access arriving at a cache, mirroring the traffic categories
/// of Fig. 3 in the paper (Load / Prefetch / Commit Requests) plus the
/// bookkeeping kinds needed internally.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A demand load issued speculatively by the core.
    Load,
    /// A demand store issued by the core (treated like a load for traffic).
    Store,
    /// A prefetch request issued by a hardware prefetcher.
    Prefetch,
    /// GhostMinion on-commit write (GM hit at commit): moves the line
    /// from the GM into L1D.
    CommitWrite,
    /// GhostMinion commit-time re-fetch (GM miss at commit): re-fetches the
    /// line into the non-speculative hierarchy.
    Refetch,
    /// A writeback of an evicted line (dirty data, or GhostMinion clean-line
    /// commit propagation governed by the writeback bit).
    Writeback,
}

impl AccessKind {
    /// True for the GhostMinion commit-path kinds that Fig. 3 groups as
    /// "Commit Requests".
    pub const fn is_commit_traffic(self) -> bool {
        matches!(
            self,
            AccessKind::CommitWrite | AccessKind::Refetch | AccessKind::Writeback
        )
    }

    /// True for demand traffic generated directly by program instructions.
    pub const fn is_demand(self) -> bool {
        matches!(self, AccessKind::Load | AccessKind::Store)
    }
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AccessKind::Load => "load",
            AccessKind::Store => "store",
            AccessKind::Prefetch => "prefetch",
            AccessKind::CommitWrite => "commit-write",
            AccessKind::Refetch => "refetch",
            AccessKind::Writeback => "writeback",
        };
        f.write_str(s)
    }
}

/// Everything a consumer learns when a memory request completes (fills).
///
/// Returned by the hierarchy to the core for demand loads and recorded in
/// the load queue. The `hit_level` field is the 2-bit SUF datum; the
/// latency fields feed Berti/TSB training.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FillInfo {
    /// The line that filled.
    pub line: LineAddr,
    /// Which level served the data.
    pub hit_level: HitLevel,
    /// Cycle at which the request was issued to the hierarchy.
    pub issued_at: Cycle,
    /// Cycle at which the data arrived at the requesting level.
    pub filled_at: Cycle,
    /// True if the request merged with an in-flight prefetch in an MSHR
    /// (the paper's classic "late prefetch").
    pub merged_with_prefetch: bool,
    /// True if the access hit on a line that a prefetcher brought in
    /// (the `Hitp` bit of the TSB X-LQ).
    pub hit_prefetched_line: bool,
    /// The X-LQ fetch-latency datum: the true fetch latency for misses,
    /// the stored prefetch latency for hits on prefetched lines, 0 for
    /// regular hits.
    pub fetch_latency: u32,
}

impl FillInfo {
    /// Observed fetch latency in cycles.
    pub fn latency(&self) -> Cycle {
        self.filled_at.saturating_sub(self.issued_at)
    }
}

/// A prefetch request produced by a prefetcher, before it is injected into
/// the memory hierarchy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PrefetchRequest {
    /// Target line to prefetch.
    pub line: LineAddr,
    /// The load IP that trained this prediction (for statistics).
    pub trigger_ip: Ip,
    /// Fill destination: `L1d` fills the L1D, `L2` fills only L2 and below.
    /// Berti orchestrates between the two based on delta confidence.
    pub fill_level: CacheLevel,
}

impl PrefetchRequest {
    /// A prefetch filling into the L1D.
    pub fn to_l1d(line: LineAddr, trigger_ip: Ip) -> Self {
        PrefetchRequest {
            line,
            trigger_ip,
            fill_level: CacheLevel::L1d,
        }
    }

    /// A prefetch filling into the L2 only.
    pub fn to_l2(line: LineAddr, trigger_ip: Ip) -> Self {
        PrefetchRequest {
            line,
            trigger_ip,
            fill_level: CacheLevel::L2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commit_traffic_partition() {
        assert!(AccessKind::CommitWrite.is_commit_traffic());
        assert!(AccessKind::Refetch.is_commit_traffic());
        assert!(AccessKind::Writeback.is_commit_traffic());
        assert!(!AccessKind::Load.is_commit_traffic());
        assert!(!AccessKind::Prefetch.is_commit_traffic());
        assert!(AccessKind::Load.is_demand());
        assert!(AccessKind::Store.is_demand());
        assert!(!AccessKind::Prefetch.is_demand());
    }

    #[test]
    fn fill_latency() {
        let fi = FillInfo {
            line: LineAddr::new(1),
            hit_level: HitLevel::Llc,
            issued_at: 100,
            filled_at: 135,
            merged_with_prefetch: false,
            hit_prefetched_line: false,
            fetch_latency: 0,
        };
        assert_eq!(fi.latency(), 35);
    }

    #[test]
    fn prefetch_request_constructors() {
        let p = PrefetchRequest::to_l1d(LineAddr::new(7), Ip::new(3));
        assert_eq!(p.fill_level, CacheLevel::L1d);
        let p = PrefetchRequest::to_l2(LineAddr::new(7), Ip::new(3));
        assert_eq!(p.fill_level, CacheLevel::L2);
    }
}
