//! SMARTS-style statistical sampling: configuration and interval math.
//!
//! Full-detail simulation of the secure configurations runs at a few
//! hundred thousand instructions per second — far too slow for the
//! billion-instruction traces the `.sct` store can stream. SMARTS-style
//! sampling (Wunderlich et al., ISCA 2003) fixes this by alternating cheap
//! *functional warming* (architectural state only: caches, GhostMinion,
//! SUF filters, branch predictor, prefetcher training) with short detailed
//! *measurement windows*, and reporting each metric as a mean with a
//! Student-t confidence interval over the per-window samples.
//!
//! This module holds the pieces every layer shares: [`SamplingConfig`]
//! (carried in the canonical job string, so sampled and full runs get
//! distinct content-addressed keys), [`MetricStats`] (mean / stderr /
//! 95% t-CI over window samples), and [`SamplingSummary`] (the block a
//! sampled `SimReport` carries alongside its accumulated counters).
//!
//! # Examples
//!
//! ```
//! use secpref_types::sampling::{MetricStats, SamplingConfig};
//!
//! let s = SamplingConfig::new(2_000, 1_000, 5_000);
//! assert_eq!(s.period(), 8_000);
//! let st = MetricStats::from_samples(&[1.0, 2.0, 3.0]);
//! assert!((st.mean - 2.0).abs() < 1e-12);
//! assert!(st.ci_contains(2.5));
//! ```

use crate::rng::Xoshiro256ss;

/// Configuration of one SMARTS-style sampled run.
///
/// A sampled run first warms functionally through the job's warm-up span,
/// then repeats `[functional gap, detailed warm slice, measured window]`
/// until the measure span is exhausted. All lengths are in instructions
/// per core.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SamplingConfig {
    /// Detailed, *measured* instructions per window.
    pub window: u64,
    /// Detailed but unmeasured instructions run before each window to
    /// re-converge micro-architectural timing state (MSHRs, DRAM queues,
    /// in-flight prefetches) that functional warming does not model.
    pub warm: u64,
    /// Functionally-warmed instructions between windows.
    pub gap: u64,
    /// Maximum extra functional instructions added to each gap; the
    /// per-window amount is drawn deterministically from `jitter_seed`.
    /// Jitter decorrelates window placement from any periodicity in the
    /// workload. `0` disables jitter.
    pub max_jitter: u64,
    /// Seed for the window-offset jitter stream.
    pub jitter_seed: u64,
}

impl SamplingConfig {
    /// A jitter-free config with the given window / warm-slice / gap
    /// lengths.
    pub fn new(window: u64, warm: u64, gap: u64) -> Self {
        assert!(window > 0, "sampling window must be positive");
        SamplingConfig {
            window,
            warm,
            gap,
            max_jitter: 0,
            jitter_seed: 0,
        }
    }

    /// Adds seeded window-offset jitter.
    pub fn with_jitter(mut self, max_jitter: u64, seed: u64) -> Self {
        self.max_jitter = max_jitter;
        self.jitter_seed = seed;
        self
    }

    /// Nominal instructions consumed per sampling period (excluding
    /// jitter): gap + warm slice + measured window.
    pub fn period(&self) -> u64 {
        self.gap + self.warm + self.window
    }

    /// Extra functional instructions prepended to window `idx`'s gap.
    ///
    /// A pure function of `(jitter_seed, idx)` — not of any generator
    /// state threaded through the run — so resumed runs, re-ordered
    /// worker pools, and cold runs all see identical window placement.
    pub fn jitter(&self, idx: u64) -> u64 {
        if self.max_jitter == 0 {
            return 0;
        }
        let mut rng =
            Xoshiro256ss::seed_from_u64(self.jitter_seed ^ idx.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        rng.gen_u64(self.max_jitter + 1)
    }

    /// Canonical string form, embedded in the job key. Stable: changing
    /// this changes every sampled job's content-addressed key.
    pub fn canonical(&self) -> String {
        format!(
            "w{}+u{}/g{}~j{}s{}",
            self.window, self.warm, self.gap, self.max_jitter, self.jitter_seed
        )
    }
}

/// Two-sided 95% Student-t critical value for `df` degrees of freedom.
///
/// Table for df 1..=30, then the asymptotic normal value 1.96. `df == 0`
/// (a single window — no variance estimate) returns 0.0 so the degenerate
/// CI collapses to the point estimate instead of inventing a width.
pub fn t_critical_95(df: u64) -> f64 {
    const TABLE: [f64; 30] = [
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
        2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
        2.052, 2.048, 2.045, 2.042,
    ];
    match df {
        0 => 0.0,
        1..=30 => TABLE[(df - 1) as usize],
        _ => 1.96,
    }
}

/// Point estimate with a 95% confidence interval over window samples.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct MetricStats {
    /// Sample mean.
    pub mean: f64,
    /// Standard error of the mean (0.0 when `n < 2`).
    pub stderr: f64,
    /// Half-width of the two-sided 95% Student-t CI (0.0 when `n < 2`).
    pub ci_half: f64,
    /// Number of window samples.
    pub n: u64,
}

impl MetricStats {
    /// Computes mean / stderr / 95% t-CI from window samples.
    ///
    /// `n == 0` yields all zeros; `n == 1` yields the point estimate with
    /// zero stderr and zero CI width (no variance information exists).
    pub fn from_samples(xs: &[f64]) -> Self {
        let n = xs.len();
        if n == 0 {
            return MetricStats::default();
        }
        let mean = xs.iter().sum::<f64>() / n as f64;
        if n == 1 {
            return MetricStats {
                mean,
                stderr: 0.0,
                ci_half: 0.0,
                n: 1,
            };
        }
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n as f64 - 1.0);
        let stderr = (var / n as f64).sqrt();
        let ci_half = t_critical_95(n as u64 - 1) * stderr;
        MetricStats {
            mean,
            stderr,
            ci_half,
            n: n as u64,
        }
    }

    /// Whether `v` lies inside the 95% CI `[mean - ci_half, mean + ci_half]`.
    pub fn ci_contains(&self, v: f64) -> bool {
        (v - self.mean).abs() <= self.ci_half
    }
}

/// The sampling block attached to a sampled `SimReport`.
///
/// The report's counters are accumulated over *measured windows only*
/// (functional and warm-slice activity is excluded); this block records
/// how those windows were laid out and the per-metric interval estimates.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SamplingSummary {
    /// Number of measured windows.
    pub windows: u64,
    /// Nominal measured instructions per window per core.
    pub window_len: u64,
    /// Instructions actually retired inside measured windows, summed over
    /// cores and windows (each window may overshoot its nominal length by
    /// up to `retire_width - 1`).
    pub measured_instructions: u64,
    /// Instructions retired by the functional-warming fast path, summed
    /// over cores.
    pub functional_instructions: u64,
    /// IPC over window samples (core-0 window IPCs for single-core runs;
    /// per-window aggregate IPC for multi-core runs).
    pub ipc: MetricStats,
    /// L1D demand MPKI over window samples.
    pub mpki_l1d: MetricStats,
    /// Prefetch accuracy over window samples.
    pub pf_accuracy: MetricStats,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t_table_spot_values() {
        // Endpoints and interior values against standard tables.
        assert!((t_critical_95(1) - 12.706).abs() < 1e-9);
        assert!((t_critical_95(2) - 4.303).abs() < 1e-9);
        assert!((t_critical_95(4) - 2.776).abs() < 1e-9);
        assert!((t_critical_95(10) - 2.228).abs() < 1e-9);
        assert!((t_critical_95(30) - 2.042).abs() < 1e-9);
        // Asymptotic tail and the degenerate df=0 case.
        assert!((t_critical_95(31) - 1.96).abs() < 1e-9);
        assert!((t_critical_95(1_000_000) - 1.96).abs() < 1e-9);
        assert_eq!(t_critical_95(0), 0.0);
    }

    #[test]
    fn t_table_is_monotone_decreasing() {
        for df in 1..40 {
            assert!(
                t_critical_95(df + 1) <= t_critical_95(df),
                "t must shrink with df ({df})"
            );
        }
    }

    #[test]
    fn stats_n0_and_n1_degenerate_cases() {
        let s0 = MetricStats::from_samples(&[]);
        assert_eq!(s0.n, 0);
        assert_eq!(s0.mean, 0.0);
        assert_eq!(s0.stderr, 0.0);
        assert_eq!(s0.ci_half, 0.0);

        // n=1: point estimate, no variance information, zero-width CI.
        let s1 = MetricStats::from_samples(&[1.5]);
        assert_eq!(s1.n, 1);
        assert!((s1.mean - 1.5).abs() < 1e-12);
        assert_eq!(s1.stderr, 0.0);
        assert_eq!(s1.ci_half, 0.0);
        assert!(s1.ci_contains(1.5));
        assert!(!s1.ci_contains(1.5001));
    }

    #[test]
    fn stats_n2_matches_hand_computation() {
        // Samples 1.0 and 3.0: mean 2, s² = 2, stderr = 1, df = 1.
        let s = MetricStats::from_samples(&[1.0, 3.0]);
        assert_eq!(s.n, 2);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert!((s.stderr - 1.0).abs() < 1e-12);
        assert!((s.ci_half - 12.706).abs() < 1e-9);
        assert!(s.ci_contains(2.0 + 12.7));
        assert!(!s.ci_contains(2.0 + 12.8));
    }

    #[test]
    fn stats_constant_samples_have_zero_width() {
        let s = MetricStats::from_samples(&[0.7; 10]);
        assert_eq!(s.n, 10);
        assert!((s.mean - 0.7).abs() < 1e-12);
        // Rounding leaves a ~1e-17 residue in the variance; the width
        // must be negligible, not bit-exact zero.
        assert!(s.stderr < 1e-12);
        assert!(s.ci_half < 1e-12);
    }

    #[test]
    fn jitter_is_a_pure_function_of_seed_and_index() {
        let s = SamplingConfig::new(1000, 500, 4000).with_jitter(300, 42);
        let a: Vec<u64> = (0..16).map(|i| s.jitter(i)).collect();
        let b: Vec<u64> = (0..16).map(|i| s.jitter(i)).collect();
        assert_eq!(a, b, "same seed+index must give same jitter");
        assert!(a.iter().all(|&j| j <= 300));
        assert!(
            a.iter().any(|&j| j != a[0]),
            "16 draws virtually never collapse to one value"
        );
        let other = SamplingConfig::new(1000, 500, 4000).with_jitter(300, 43);
        let c: Vec<u64> = (0..16).map(|i| other.jitter(i)).collect();
        assert_ne!(a, c, "different seeds must give different streams");
        // Out-of-order evaluation sees the same values (no hidden state).
        assert_eq!(s.jitter(7), a[7]);
        assert_eq!(s.jitter(0), a[0]);
    }

    #[test]
    fn jitter_disabled_is_zero() {
        let s = SamplingConfig::new(1000, 0, 4000);
        assert!((0..8).all(|i| s.jitter(i) == 0));
    }

    #[test]
    fn canonical_is_stable() {
        let s = SamplingConfig::new(2000, 1000, 5000).with_jitter(250, 9);
        assert_eq!(s.canonical(), "w2000+u1000/g5000~j250s9");
        // Any field change must change the canonical form (and thus the
        // content-addressed job key).
        assert_ne!(
            SamplingConfig::new(2000, 1000, 5001).canonical(),
            SamplingConfig::new(2000, 1000, 5000).canonical()
        );
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_rejected() {
        let _ = SamplingConfig::new(0, 1, 1);
    }
}
