//! Fixed-size log2-bucketed histogram (DESIGN.md §12).
//!
//! Values are binned into power-of-two *octaves*, each split into
//! [`SUB_BUCKETS`] linear sub-buckets, so relative bucket width is bounded
//! by `1/SUB_BUCKETS` everywhere while the whole table stays a fixed
//! [`N_BUCKETS`]-entry array: recording is allocation-free and O(1)
//! (a `leading_zeros` plus two shifts). Values at or beyond
//! [`Hist::OVERFLOW_LO`] saturate into the final *overflow* bucket rather
//! than growing the table.
//!
//! Alongside the buckets the histogram keeps exact `count`, `sum` (128-bit,
//! so even `u64::MAX` records cannot overflow it), `min`, and `max`, which
//! makes the mean exact and gives tight bounds for any quantile: the
//! quantile's bucket brackets the true value to within one sub-bucket.
//!
//! # Examples
//!
//! ```
//! use secpref_types::Hist;
//!
//! let mut h = Hist::new();
//! for v in [1, 2, 3, 100, 200] {
//!     h.record(v);
//! }
//! assert_eq!(h.count(), 5);
//! assert_eq!(h.min(), Some(1));
//! assert_eq!(h.max(), Some(200));
//! let (lo, hi) = h.quantile_bounds(0.5).unwrap();
//! assert!(lo <= 3 && 3 <= hi);
//! ```

/// log2 of the number of linear sub-buckets per power-of-two octave.
pub const SUB_BUCKET_BITS: u32 = 3;
/// Linear sub-buckets per octave: relative error of a bucket is ≤ 1/8.
pub const SUB_BUCKETS: usize = 1 << SUB_BUCKET_BITS;
/// Octaves above the exact range (values `0..SUB_BUCKETS` are exact).
const GROUPS: usize = 32;
/// Total bucket count: the exact range, `GROUPS` octaves of `SUB_BUCKETS`,
/// and one saturating overflow bucket.
pub const N_BUCKETS: usize = SUB_BUCKETS + GROUPS * SUB_BUCKETS + 1;

/// A fixed-size log2-bucketed histogram of `u64` samples.
///
/// See the [module docs](self) for the bucket math.
#[derive(Clone, Debug)]
pub struct Hist {
    counts: [u64; N_BUCKETS],
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Hist {
    fn default() -> Self {
        Self::new()
    }
}

impl Hist {
    /// Smallest value that lands in the saturating overflow bucket.
    ///
    /// With 3 sub-bucket bits and 32 octaves this is 2³⁵ — far beyond any
    /// plausible cycle latency, so real data never saturates.
    pub const OVERFLOW_LO: u64 = (SUB_BUCKETS as u64) << GROUPS;

    /// An empty histogram. All-const so it can live in arrays and statics.
    pub const fn new() -> Self {
        Hist {
            counts: [0; N_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Bucket index for `v` (the hot path: `leading_zeros` + shifts).
    #[inline]
    fn index(v: u64) -> usize {
        if v < SUB_BUCKETS as u64 {
            return v as usize;
        }
        if v >= Self::OVERFLOW_LO {
            return N_BUCKETS - 1;
        }
        let msb = 63 - v.leading_zeros();
        let group = (msb - SUB_BUCKET_BITS) as usize;
        let sub = ((v >> (msb - SUB_BUCKET_BITS)) as usize) & (SUB_BUCKETS - 1);
        SUB_BUCKETS + group * SUB_BUCKETS + sub
    }

    /// `[lo, hi]` (inclusive) value range of bucket `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= N_BUCKETS`.
    pub fn bucket_bounds(i: usize) -> (u64, u64) {
        assert!(i < N_BUCKETS, "bucket index out of range");
        if i < SUB_BUCKETS {
            return (i as u64, i as u64);
        }
        if i == N_BUCKETS - 1 {
            return (Self::OVERFLOW_LO, u64::MAX);
        }
        let group = ((i - SUB_BUCKETS) / SUB_BUCKETS) as u32;
        let sub = ((i - SUB_BUCKETS) % SUB_BUCKETS) as u64;
        let base = (SUB_BUCKETS as u64) << group;
        let width = 1u64 << group;
        let lo = base + sub * width;
        (lo, lo + width - 1)
    }

    /// Records one sample. Allocation-free, O(1).
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.record_n(v, 1);
    }

    /// Records `n` samples of the same value.
    #[inline]
    pub fn record_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.counts[Self::index(v)] += n;
        self.count += n;
        self.sum += v as u128 * n as u128;
        if v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
    }

    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of all recorded samples.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Exact smallest recorded sample, `None` when empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Exact largest recorded sample, `None` when empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Exact mean, `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// True when no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Folds `other` into `self` (bucket-wise add; min/max/count/sum stay
    /// exact).
    pub fn merge(&mut self, other: &Hist) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += *b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// `[lo, hi]` bounds bracketing the `q`-quantile (`0.0 ..= 1.0`),
    /// `None` when the histogram is empty. The true quantile lies within
    /// the returned bucket, tightened by the exact min/max.
    pub fn quantile_bounds(&self, q: f64) -> Option<(u64, u64)> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target sample, 1-based: ceil(q * count), at least 1.
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let (lo, hi) = Self::bucket_bounds(i);
                return Some((lo.max(self.min), hi.min(self.max)));
            }
        }
        unreachable!("count > 0 but no bucket reached the rank")
    }

    /// Iterates the non-empty buckets as `(lo, hi, count)` (inclusive
    /// bounds), in ascending value order.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| {
                let (lo, hi) = Self::bucket_bounds(i);
                (lo, hi, c)
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = Hist::new();
        for v in 0..SUB_BUCKETS as u64 {
            h.record(v);
        }
        for (i, (lo, hi, c)) in h.buckets().enumerate() {
            assert_eq!((lo, hi, c), (i as u64, i as u64, 1));
        }
    }

    #[test]
    fn every_value_lands_in_its_bucket() {
        // Bucket bounds and the index function must be mutually inverse.
        for shift in 0..40 {
            for off in [0u64, 1, 3] {
                let v = (1u64 << shift).wrapping_add(off);
                let i = Hist::index(v);
                let (lo, hi) = Hist::bucket_bounds(i);
                assert!(lo <= v && v <= hi, "v={v} i={i} lo={lo} hi={hi}");
            }
        }
    }

    #[test]
    fn bucket_bounds_tile_the_domain() {
        // Consecutive buckets must be adjacent with no gaps or overlaps.
        let mut expect_lo = 0u64;
        for i in 0..N_BUCKETS {
            let (lo, hi) = Hist::bucket_bounds(i);
            assert_eq!(
                lo,
                expect_lo,
                "bucket {i} does not start where {} ended",
                i.wrapping_sub(1)
            );
            assert!(hi >= lo);
            expect_lo = hi.wrapping_add(1);
        }
        assert_eq!(expect_lo, 0, "last bucket must end at u64::MAX");
    }

    #[test]
    fn exact_stats_and_mean() {
        let mut h = Hist::new();
        for v in [10u64, 20, 30] {
            h.record(v);
        }
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 60);
        assert_eq!(h.min(), Some(10));
        assert_eq!(h.max(), Some(30));
        assert_eq!(h.mean(), Some(20.0));
    }

    #[test]
    fn zero_count_quantiles_are_none() {
        let h = Hist::new();
        assert_eq!(h.quantile_bounds(0.0), None);
        assert_eq!(h.quantile_bounds(0.5), None);
        assert_eq!(h.quantile_bounds(1.0), None);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), None);
        assert!(h.is_empty());
    }

    #[test]
    fn overflow_bucket_saturates() {
        let mut h = Hist::new();
        h.record(Hist::OVERFLOW_LO);
        h.record(Hist::OVERFLOW_LO + 12345);
        h.record(u64::MAX - 1);
        let bs: Vec<_> = h.buckets().collect();
        assert_eq!(bs.len(), 1, "all three must share the overflow bucket");
        assert_eq!(bs[0], (Hist::OVERFLOW_LO, u64::MAX, 3));
    }

    #[test]
    fn record_at_u64_max_is_exact_in_stats() {
        let mut h = Hist::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        assert_eq!(h.count(), 2);
        assert_eq!(h.min(), Some(u64::MAX));
        assert_eq!(h.max(), Some(u64::MAX));
        // The 128-bit sum holds 2 * u64::MAX exactly.
        assert_eq!(h.sum(), 2 * (u64::MAX as u128));
        let (lo, hi) = h.quantile_bounds(1.0).unwrap();
        assert_eq!((lo, hi), (u64::MAX, u64::MAX));
    }

    #[test]
    fn merge_of_disjoint_histograms() {
        let mut a = Hist::new();
        a.record(5);
        a.record(7);
        let mut b = Hist::new();
        b.record(1_000_000);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.sum(), 1_000_012);
        assert_eq!(a.min(), Some(5));
        assert_eq!(a.max(), Some(1_000_000));
        // Merging an empty histogram is the identity.
        let before = a.clone();
        a.merge(&Hist::new());
        assert_eq!(a.count(), before.count());
        assert_eq!(a.min(), before.min());
        assert_eq!(a.max(), before.max());
    }

    #[test]
    fn quantile_bounds_bracket_the_true_value() {
        let mut h = Hist::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        for (q, truth) in [(0.0, 1u64), (0.5, 500), (0.9, 900), (1.0, 1000)] {
            let (lo, hi) = h.quantile_bounds(q).unwrap();
            assert!(lo <= truth && truth <= hi, "q={q}: [{lo},{hi}] vs {truth}");
            // Log2 buckets with 8 sub-buckets: bounds within 12.5%.
            assert!((hi - lo) as f64 <= 0.125 * hi as f64 + 1.0);
        }
    }

    #[test]
    fn record_n_matches_repeated_record() {
        let mut a = Hist::new();
        a.record_n(42, 5);
        let mut b = Hist::new();
        for _ in 0..5 {
            b.record(42);
        }
        assert_eq!(a.count(), b.count());
        assert_eq!(a.sum(), b.sum());
        assert_eq!(
            a.buckets().collect::<Vec<_>>(),
            b.buckets().collect::<Vec<_>>()
        );
        a.record_n(7, 0); // n = 0 is a no-op, min/max untouched
        assert_eq!(a.min(), Some(42));
    }
}
