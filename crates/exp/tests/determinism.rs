//! The engine's determinism contract, end to end:
//!
//! 1. the same job produces a bit-identical report on every run,
//! 2. a sweep's results are independent of the worker count,
//! 3. a resumed run (fresh engine over an existing store) returns exactly
//!    what the cold run produced, and its manifest proves nothing was
//!    re-simulated.

use secpref_exp::{codec, Engine, ExpScale, JobSpec};
use secpref_types::{PrefetchMode, PrefetcherKind, SecureMode, SystemConfig};
use std::path::PathBuf;

fn tmp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("secpref-determinism-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// A small but representative sweep: plain baseline, a secure on-commit
/// prefetcher, a duplicate, and a 4-core mix.
fn sweep() -> Vec<JobSpec> {
    let base = SystemConfig::baseline(1);
    let secure = base
        .clone()
        .with_secure(SecureMode::GhostMinion)
        .with_prefetcher(PrefetcherKind::IpStride)
        .with_mode(PrefetchMode::OnCommit);
    let mix = [
        "leela_like".to_string(),
        "gcc_like".to_string(),
        "leela_like".to_string(),
        "bfs_small".to_string(),
    ];
    vec![
        JobSpec::single(base.clone(), "leela_like", ExpScale::Quick),
        JobSpec::single(secure.clone(), "leela_like", ExpScale::Quick),
        JobSpec::single(base.clone(), "gcc_like", ExpScale::Quick),
        JobSpec::single(secure, "bfs_small", ExpScale::Quick),
        JobSpec::single(base.clone(), "leela_like", ExpScale::Quick), // duplicate
        JobSpec::mix(
            base.with_secure(SecureMode::GhostMinion),
            &mix,
            ExpScale::Quick,
        ),
    ]
}

fn serialize_all(reports: &[secpref_sim::SimReport]) -> Vec<String> {
    reports.iter().map(codec::report_to_string).collect()
}

#[test]
fn same_job_is_bit_identical_across_runs() {
    let job = sweep().remove(1);
    let a = codec::report_to_string(&job.run());
    let b = codec::report_to_string(&job.run());
    assert_eq!(
        a, b,
        "two fresh simulations of one job must agree bit for bit"
    );
}

#[test]
fn worker_count_does_not_change_results() {
    let jobs = sweep();
    let dir1 = tmp_dir("w1");
    let dir4 = tmp_dir("w4");
    let serial = Engine::new(&dir1, 1).unwrap().run_all(&jobs);
    let parallel = Engine::new(&dir4, 4).unwrap().run_all(&jobs);
    assert_eq!(serialize_all(&serial), serialize_all(&parallel));
    let _ = std::fs::remove_dir_all(dir1);
    let _ = std::fs::remove_dir_all(dir4);
}

#[test]
fn resumed_run_matches_cold_run_without_resimulating() {
    let jobs = sweep();
    let dir = tmp_dir("resume");

    let (cold_reports, cold) = Engine::new(&dir, 4).unwrap().run_all_with_summary(&jobs);
    assert_eq!(cold.jobs_requested, jobs.len());
    assert_eq!(
        cold.jobs_unique, 5,
        "one duplicate job must be deduplicated"
    );
    assert_eq!(cold.executed, 5);
    assert_eq!(cold.from_store, 0);

    // A fresh engine on the same store — as after a kill + restart.
    let (warm_reports, warm) = Engine::new(&dir, 4).unwrap().run_all_with_summary(&jobs);
    assert_eq!(warm.executed, 0, "resume must not re-simulate anything");
    assert_eq!(warm.from_store, 5);
    assert_eq!(serialize_all(&cold_reports), serialize_all(&warm_reports));

    // The manifests on disk tell the same story.
    let cold_manifest = std::fs::read_to_string(&cold.manifest_path).unwrap();
    let warm_manifest = std::fs::read_to_string(&warm.manifest_path).unwrap();
    let get = |text: &str, field: &str| {
        secpref_exp::json::parse(text.trim())
            .unwrap()
            .get(field)
            .and_then(secpref_exp::json::Json::as_u64)
            .unwrap()
    };
    assert_eq!(get(&cold_manifest, "jobs_executed"), 5);
    assert_eq!(get(&warm_manifest, "jobs_executed"), 0);
    assert_eq!(get(&warm_manifest, "jobs_from_store"), 5);

    // Both sweep span traces must validate: the cold run exercises the
    // execute/simulate/store-append spans, the warm run the all-dedup-hit
    // resolve path (whose events trail the phase start — a trailing `X`
    // there once regressed the engine track's timestamp order).
    for summary in [&cold, &warm] {
        let path = summary.trace_path.as_ref().expect("span trace written");
        let text = std::fs::read_to_string(path).unwrap();
        secpref_exp::validate_trace_json(&text)
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
    }
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn trace_artifacts_are_byte_identical_across_workers_and_resume() {
    // Traced runs must satisfy the same contract as reports, but at the
    // artifact-byte level: the events JSONL and epochs CSV are a pure
    // function of (job, obs config) — worker count, completion
    // interleaving, and whatever an earlier run left in the result store
    // must all be invisible.
    let jobs = sweep();
    let obs = secpref_exp::ObsConfig::enabled().with_epoch_interval(500);
    let dir1 = tmp_dir("obs-w1");
    let dir4 = tmp_dir("obs-w4");

    let serial = Engine::new(&dir1, 1).unwrap();
    let (serial_reports, serial_summary) = serial.run_traced(&jobs, &obs);
    let parallel = Engine::new(&dir4, 4).unwrap();
    parallel.run_traced(&jobs, &obs);

    let artifact = |dir: &PathBuf, key: &str, suffix: &str| {
        std::fs::read(dir.join("obs").join(format!("{key}.{suffix}"))).unwrap()
    };
    let keys: Vec<String> = {
        let mut seen = std::collections::HashSet::new();
        jobs.iter()
            .map(JobSpec::key)
            .filter(|k| seen.insert(k.clone()))
            .collect()
    };
    assert_eq!(keys.len(), serial_summary.jobs_unique);
    for key in &keys {
        let events = artifact(&dir1, key, "events.jsonl");
        assert!(!events.is_empty());
        assert_eq!(
            events,
            artifact(&dir4, key, "events.jsonl"),
            "events JSONL for {key} must not depend on the worker count"
        );
        assert_eq!(events, artifact(&dir4, key, "events.jsonl"));
        assert_eq!(
            artifact(&dir1, key, "epochs.csv"),
            artifact(&dir4, key, "epochs.csv"),
            "epochs CSV for {key} must not depend on the worker count"
        );
    }

    // Re-tracing over a store that already holds every result (a
    // "resumed" diagnostic run) reproduces the artifacts bit for bit:
    // traced runs bypass the store, so warm == cold.
    let warm = Engine::new(&dir1, 4).unwrap();
    let cold_bytes: Vec<Vec<u8>> = keys
        .iter()
        .map(|k| artifact(&dir1, k, "events.jsonl"))
        .collect();
    let (warm_reports, warm_summary) = warm.run_traced(&jobs, &obs);
    assert_eq!(
        warm_summary.executed, warm_summary.jobs_unique,
        "traced runs always re-simulate"
    );
    for (key, cold) in keys.iter().zip(&cold_bytes) {
        assert_eq!(
            &artifact(&dir1, key, "events.jsonl"),
            cold,
            "resumed trace of {key} must be byte-identical to the cold one"
        );
    }
    assert_eq!(serialize_all(&serial_reports), serialize_all(&warm_reports));

    // Every traced job's manifest record carries an obs summary with a
    // populated epoch series; the secure on-commit jobs also record
    // commit/prefetch events.
    for record in &serial_summary.jobs {
        let obs = record.obs.expect("traced jobs must report an obs summary");
        assert!(obs.epochs > 0, "{} produced no epochs", record.label);
    }
    assert!(
        serial_summary
            .jobs
            .iter()
            .any(|r| r.obs.is_some_and(|o| o.events_recorded > 0)),
        "the sweep's secure jobs must record events"
    );

    let _ = std::fs::remove_dir_all(dir1);
    let _ = std::fs::remove_dir_all(dir4);
}

#[test]
fn telemetry_artifacts_are_byte_identical_across_workers_and_resume() {
    // Telemetry runs inherit the artifact-byte contract: `<key>.hist.csv`
    // is a pure function of the job — worker count, completion
    // interleaving, and pre-existing store contents are invisible. The
    // span trace (`trace-<run_id>.json`) embeds wall-clock durations, so
    // it is validated structurally instead of byte-compared.
    let jobs = sweep();
    let tel = secpref_exp::TelConfig::enabled();
    let dir1 = tmp_dir("tel-w1");
    let dir4 = tmp_dir("tel-w4");

    let serial = Engine::new(&dir1, 1).unwrap();
    let (serial_reports, serial_summary) = serial.run_telemetry(&jobs, &tel);
    let parallel = Engine::new(&dir4, 4).unwrap();
    let (parallel_reports, parallel_summary) = parallel.run_telemetry(&jobs, &tel);

    // Reports are worker-count independent, as in plain sweeps.
    assert_eq!(
        serialize_all(&serial_reports),
        serialize_all(&parallel_reports)
    );

    let artifact = |dir: &PathBuf, key: &str| {
        std::fs::read(dir.join("telemetry").join(format!("{key}.hist.csv"))).unwrap()
    };
    let keys: Vec<String> = {
        let mut seen = std::collections::HashSet::new();
        jobs.iter()
            .map(JobSpec::key)
            .filter(|k| seen.insert(k.clone()))
            .collect()
    };
    assert_eq!(keys.len(), serial_summary.jobs_unique);
    for key in &keys {
        let hist = artifact(&dir1, key);
        assert!(!hist.is_empty());
        assert_eq!(
            hist,
            artifact(&dir4, key),
            "hist CSV for {key} must not depend on the worker count"
        );
    }

    // A "resumed" telemetry run (same store, fresh engine) reproduces the
    // artifacts bit for bit: telemetry runs bypass the store.
    let cold_bytes: Vec<Vec<u8>> = keys.iter().map(|k| artifact(&dir1, k)).collect();
    let (_, warm_summary) = Engine::new(&dir1, 4).unwrap().run_telemetry(&jobs, &tel);
    assert_eq!(
        warm_summary.executed, warm_summary.jobs_unique,
        "telemetry runs always re-simulate"
    );
    for (key, cold) in keys.iter().zip(&cold_bytes) {
        assert_eq!(
            &artifact(&dir1, key),
            cold,
            "resumed telemetry of {key} must be byte-identical to the cold one"
        );
    }

    // Both runs exported a structurally valid span trace with one track
    // per active worker plus the engine track.
    for (summary, min_tracks) in [(&serial_summary, 2), (&parallel_summary, 3)] {
        let path = summary.trace_path.as_ref().expect("span trace written");
        let text = std::fs::read_to_string(path).unwrap();
        let stats = secpref_exp::validate_trace_json(&text)
            .unwrap_or_else(|e| panic!("invalid span trace {}: {e}", path.display()));
        assert!(stats.events > 0);
        assert!(
            stats.tracks >= min_tracks,
            "expected ≥{min_tracks} tracks in {}",
            path.display()
        );
    }

    // Every telemetry job's manifest record carries a sample total, and
    // the manifest exposes the run's utilization and dedup hit rate.
    for record in &serial_summary.jobs {
        assert!(
            record.tel_samples.is_some_and(|s| s > 0),
            "{} recorded no samples",
            record.label
        );
    }
    assert!(serial_summary.utilization > 0.0 && serial_summary.utilization <= 1.0);
    let manifest = std::fs::read_to_string(&serial_summary.manifest_path).unwrap();
    let json = secpref_exp::json::parse(manifest.trim()).unwrap();
    assert!(json.get("utilization").and_then(|j| j.as_f64()).is_some());
    assert!(json
        .get("dedup_hit_rate")
        .and_then(|j| j.as_f64())
        .is_some());

    let _ = std::fs::remove_dir_all(dir1);
    let _ = std::fs::remove_dir_all(dir4);
}

#[test]
fn many_core_mix_resume_matches_cold_run() {
    // Scale-out cell: one 32-core heterogeneous mix (every suite trace,
    // cycled to 32 slots, with a rotating per-core policy wheel) must
    // satisfy the same resume contract as the small sweep — the cold run
    // simulates it once, a fresh engine over the same store returns the
    // bit-identical report without re-simulating.
    use secpref_types::CorePolicy;
    const CORES: usize = 32;
    let names = secpref_trace::suite::spec_names();
    let mix: Vec<String> = (0..CORES).map(|c| names[c % names.len()].clone()).collect();
    let base = CorePolicy::of(&SystemConfig::baseline(1));
    let policies: Vec<CorePolicy> = (0..CORES)
        .map(|c| match c % 4 {
            0 => base,
            1 => CorePolicy {
                secure: SecureMode::GhostMinion,
                prefetcher: PrefetcherKind::Berti,
                prefetch_mode: PrefetchMode::OnCommit,
                suf: true,
                ..base
            },
            2 => CorePolicy {
                secure: SecureMode::GhostMinion,
                prefetcher: PrefetcherKind::IpStride,
                prefetch_mode: PrefetchMode::OnAccess,
                ..base
            },
            _ => CorePolicy {
                secure: SecureMode::GhostMinion,
                prefetcher: PrefetcherKind::Berti,
                prefetch_mode: PrefetchMode::OnCommit,
                suf: true,
                timely_secure: true,
            },
        })
        .collect();
    let cfg = SystemConfig::baseline(CORES).with_core_policies(policies);
    cfg.validate().expect("32-core mix config must be valid");
    let jobs = vec![JobSpec::mix(cfg, &mix, ExpScale::Quick)];
    let dir = tmp_dir("manycore");

    let (cold_reports, cold) = Engine::new(&dir, 2).unwrap().run_all_with_summary(&jobs);
    assert_eq!(cold.executed, 1);
    assert_eq!(cold_reports[0].cores.len(), CORES);

    let (warm_reports, warm) = Engine::new(&dir, 2).unwrap().run_all_with_summary(&jobs);
    assert_eq!(warm.executed, 0, "resume must not re-simulate the mix");
    assert_eq!(warm.from_store, 1);
    assert_eq!(serialize_all(&cold_reports), serialize_all(&warm_reports));
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn sampled_jobs_are_deterministic_across_workers_and_resume() {
    // The seeded window-offset jitter is a pure function of
    // (jitter_seed, window index), so a sampled job must be bit-identical
    // no matter which worker runs it, and a resumed run must return the
    // stored bytes. A full-detail twin of the same config must get its
    // own store key (no aliasing between sampled and full results).
    use secpref_types::SamplingConfig;
    let secure = SystemConfig::baseline(1)
        .with_secure(SecureMode::GhostMinion)
        .with_prefetcher(PrefetcherKind::IpStride)
        .with_mode(PrefetchMode::OnCommit)
        .with_suf(true);
    let s = SamplingConfig::new(2_000, 500, 1_500).with_jitter(300, 11);
    let jobs = vec![
        JobSpec::single(secure.clone(), "leela_like", ExpScale::Quick).with_sampling(s),
        JobSpec::single(secure.clone(), "leela_like", ExpScale::Quick).with_sampling(s), // dup
        JobSpec::single(secure, "leela_like", ExpScale::Quick), // full-detail twin
    ];
    assert_ne!(jobs[0].key(), jobs[2].key());

    let dir1 = tmp_dir("sampled-w1");
    let dir4 = tmp_dir("sampled-w4");
    let serial = Engine::new(&dir1, 1).unwrap().run_all(&jobs);
    let parallel = Engine::new(&dir4, 4).unwrap().run_all(&jobs);
    assert_eq!(serialize_all(&serial), serialize_all(&parallel));
    let sm = serial[0].sampling.as_ref().expect("sampled block stored");
    assert!(sm.windows >= 3);
    assert!(serial[2].sampling.is_none(), "full twin stays full detail");

    let (warm_reports, warm) = Engine::new(&dir4, 4).unwrap().run_all_with_summary(&jobs);
    assert_eq!(warm.executed, 0, "resume must not re-simulate");
    assert_eq!(warm.from_store, 2);
    assert_eq!(serialize_all(&parallel), serialize_all(&warm_reports));
    let _ = std::fs::remove_dir_all(dir1);
    let _ = std::fs::remove_dir_all(dir4);
}

#[test]
fn many_core_sampled_resume_matches_cold_run() {
    // 32-core sampled cell: per-core policy wheel plus SMARTS sampling.
    // Every core must measure every window (the scheduler waits on the
    // slowest core), and resume must return the cold run's exact bytes.
    use secpref_types::{CorePolicy, SamplingConfig};
    const CORES: usize = 32;
    let names = secpref_trace::suite::spec_names();
    let mix: Vec<String> = (0..CORES).map(|c| names[c % names.len()].clone()).collect();
    let base = CorePolicy::of(&SystemConfig::baseline(1));
    let policies: Vec<CorePolicy> = (0..CORES)
        .map(|c| match c % 2 {
            0 => base,
            _ => CorePolicy {
                secure: SecureMode::GhostMinion,
                prefetcher: PrefetcherKind::Berti,
                prefetch_mode: PrefetchMode::OnCommit,
                suf: true,
                ..base
            },
        })
        .collect();
    let cfg = SystemConfig::baseline(CORES).with_core_policies(policies);
    cfg.validate()
        .expect("32-core sampled config must be valid");
    let s = SamplingConfig::new(1_500, 500, 2_000).with_jitter(250, 7);
    let jobs = vec![JobSpec::mix(cfg, &mix, ExpScale::Quick).with_sampling(s)];
    let dir = tmp_dir("manycore-sampled");

    let (cold_reports, cold) = Engine::new(&dir, 2).unwrap().run_all_with_summary(&jobs);
    assert_eq!(cold.executed, 1);
    assert_eq!(cold_reports[0].cores.len(), CORES);
    let sm = cold_reports[0].sampling.as_ref().expect("sampled block");
    assert!(sm.windows >= 2);
    let total: u64 = cold_reports[0].cores.iter().map(|c| c.instructions).sum();
    assert_eq!(total, sm.measured_instructions);

    let (warm_reports, warm) = Engine::new(&dir, 2).unwrap().run_all_with_summary(&jobs);
    assert_eq!(warm.executed, 0, "resume must not re-simulate the mix");
    assert_eq!(warm.from_store, 1);
    assert_eq!(serialize_all(&cold_reports), serialize_all(&warm_reports));
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn partial_store_resumes_the_rest() {
    // Simulate a killed run: only part of the sweep made it to disk.
    let jobs = sweep();
    let dir = tmp_dir("partial");
    {
        let engine = Engine::new(&dir, 2).unwrap();
        engine.run_all(&jobs[..2]);
    }
    let (_, summary) = Engine::new(&dir, 2).unwrap().run_all_with_summary(&jobs);
    assert_eq!(summary.from_store, 2);
    assert_eq!(summary.executed, 3);
    let _ = std::fs::remove_dir_all(dir);
}
