//! Telemetry-artifact exporter and trace-event validator.
//!
//! A telemetry run's [`TelCapture`] is exported as one flat CSV under the
//! store's `telemetry/` directory, named by the job's content key:
//!
//! - `<key>.hist.csv` — every histogram's non-empty buckets
//!   (`hist,lo,hi,count` rows), each histogram's exact `total`/`sum`/
//!   `min`/`max` summary rows, and the demand-conservation scalars
//!   (`meta/demand_accesses`, `meta/unfinished_demands`).
//!
//! The artifact is **deterministic**: its bytes are a pure function of
//! the job. No timestamps, worker counts, or host details appear, which
//! is what makes the telemetry-determinism test (byte-identical across
//! `--workers` values and resume-vs-cold) hold trivially.
//!
//! [`validate_trace_json`] is the counterpart of
//! `secpref_telemetry::TraceBuilder`: it parses an exported Chrome
//! trace-event document with this crate's hand-rolled JSON parser and
//! checks the structural invariants Perfetto needs — every `B` has a
//! matching `E` on its track, and per-track timestamps never go
//! backwards. Span-trace files embed wall-clock durations, so they are
//! validated structurally instead of byte-compared.

use secpref_sim::TelCapture;
use secpref_types::Hist;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::io;
use std::path::{Path, PathBuf};

/// Renders one histogram's rows: non-empty buckets, then exact summary
/// rows (`total`, `sum`, `min`, `max` — the latter two only when the
/// histogram has samples).
fn hist_rows(out: &mut String, name: &str, h: &Hist) {
    for (lo, hi, count) in h.buckets() {
        if count > 0 {
            let _ = writeln!(out, "{name},{lo},{hi},{count}");
        }
    }
    let _ = writeln!(out, "{name},total,,{}", h.count());
    let _ = writeln!(out, "{name},sum,,{}", h.sum());
    if let (Some(min), Some(max)) = (h.min(), h.max()) {
        let _ = writeln!(out, "{name},min,,{min}");
        let _ = writeln!(out, "{name},max,,{max}");
    }
}

/// Renders the full `<key>.hist.csv` artifact for a capture.
pub fn hist_csv(cap: &TelCapture) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("hist,lo,hi,count\n");
    for (name, h) in cap.named() {
        hist_rows(&mut out, &name, h);
    }
    let _ = writeln!(out, "meta/demand_accesses,total,,{}", cap.demand_accesses);
    let _ = writeln!(
        out,
        "meta/unfinished_demands,total,,{}",
        cap.unfinished_demands
    );
    out
}

/// Writes `<key>.hist.csv` under `dir`, creating it if needed. Returns
/// the written path.
///
/// # Errors
///
/// Propagates directory-creation and file-write failures.
pub fn write_tel_artifacts(dir: &Path, key: &str, cap: &TelCapture) -> io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{key}.hist.csv"));
    std::fs::write(&path, hist_csv(cap))?;
    Ok(path)
}

/// Structural statistics of a validated trace-event document.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceStats {
    /// Total events in the `traceEvents` array (metadata included).
    pub events: usize,
    /// Distinct `(pid, tid)` tracks carrying timed events.
    pub tracks: usize,
}

/// Validates an exported Chrome trace-event JSON document.
///
/// Checks that the document parses, that every event carries the
/// required fields for its phase, that every `B` (span begin) has a
/// matching `E` (span end) on the same `(pid, tid)` track with a
/// non-decreasing timestamp, and that per-track timestamps are monotone
/// (Perfetto tolerates little else). Returns the document's stats.
///
/// # Errors
///
/// Returns a description of the first structural violation found.
pub fn validate_trace_json(text: &str) -> Result<TraceStats, String> {
    let doc = crate::json::parse(text.trim()).map_err(|e| format!("not valid JSON: {e}"))?;
    let events = doc
        .get("traceEvents")
        .ok_or("missing traceEvents")?
        .as_arr()
        .ok_or("traceEvents is not an array")?;
    // Per-track open-span stack (B timestamps) and last-seen timestamp.
    let mut open: HashMap<(u64, u64), Vec<u64>> = HashMap::new();
    let mut last_ts: HashMap<(u64, u64), u64> = HashMap::new();
    let mut tracks: HashMap<(u64, u64), ()> = HashMap::new();
    for (i, ev) in events.iter().enumerate() {
        let ph = ev
            .get("ph")
            .and_then(|p| p.as_str())
            .ok_or_else(|| format!("event {i}: missing ph"))?;
        let pid = ev
            .get("pid")
            .and_then(|p| p.as_u64())
            .ok_or_else(|| format!("event {i}: missing pid"))?;
        let tid = ev
            .get("tid")
            .and_then(|t| t.as_u64())
            .ok_or_else(|| format!("event {i}: missing tid"))?;
        let track = (pid, tid);
        if ph == "M" {
            continue; // metadata carries no timestamp
        }
        let ts = ev
            .get("ts")
            .and_then(|t| t.as_u64())
            .ok_or_else(|| format!("event {i}: ph {ph} missing ts"))?;
        let prev = last_ts.entry(track).or_insert(ts);
        if ts < *prev {
            return Err(format!(
                "event {i}: track {track:?} timestamp regresses ({ts} < {prev})"
            ));
        }
        *prev = ts;
        tracks.insert(track, ());
        match ph {
            "B" => open.entry(track).or_default().push(ts),
            "E" => {
                let begin = open
                    .get_mut(&track)
                    .and_then(Vec::pop)
                    .ok_or_else(|| format!("event {i}: E without open B on track {track:?}"))?;
                if ts < begin {
                    return Err(format!(
                        "event {i}: span ends ({ts}) before it begins ({begin})"
                    ));
                }
            }
            "X" => {
                ev.get("dur")
                    .and_then(|d| d.as_u64())
                    .ok_or_else(|| format!("event {i}: X missing dur"))?;
            }
            "C" => {}
            other => return Err(format!("event {i}: unsupported phase {other:?}")),
        }
    }
    for (track, stack) in &open {
        if !stack.is_empty() {
            return Err(format!(
                "track {track:?} has {} unclosed B span(s)",
                stack.len()
            ));
        }
    }
    Ok(TraceStats {
        events: events.len(),
        tracks: tracks.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use secpref_telemetry::TraceBuilder;

    fn capture() -> TelCapture {
        let mut cap = TelCapture::default();
        cap.load_latency[1].record(4);
        cap.load_latency[1].record(900);
        cap.pf_useful.record(12);
        cap.demand_accesses = 3;
        cap.unfinished_demands = 1;
        cap
    }

    #[test]
    fn hist_csv_is_deterministic_and_reconcilable() {
        let a = hist_csv(&capture());
        let b = hist_csv(&capture());
        assert_eq!(a, b, "export must be a pure function of the capture");
        assert!(a.starts_with("hist,lo,hi,count\n"));
        assert!(a.contains("load_latency/l1d,total,,2\n"), "{a}");
        assert!(a.contains("load_latency/l1d,min,,4\n"), "{a}");
        assert!(a.contains("load_latency/l1d,max,,900\n"), "{a}");
        assert!(a.contains("pf_timeliness/useful,total,,1\n"), "{a}");
        assert!(a.contains("meta/demand_accesses,total,,3\n"), "{a}");
        assert!(a.contains("meta/unfinished_demands,total,,1\n"), "{a}");
        // Empty histograms export a zero total and no min/max rows.
        assert!(a.contains("dram_queue_delay,total,,0\n"), "{a}");
        assert!(!a.contains("dram_queue_delay,min"), "{a}");
    }

    #[test]
    fn artifacts_land_under_the_requested_dir() {
        let dir = std::env::temp_dir().join(format!("secpref-tel-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = write_tel_artifacts(&dir, "deadbeef", &capture()).unwrap();
        assert!(path.ends_with("deadbeef.hist.csv"));
        assert_eq!(
            std::fs::read_to_string(&path).unwrap(),
            hist_csv(&capture())
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn validator_accepts_builder_output() {
        let mut t = TraceBuilder::new();
        t.thread_name(0, "engine");
        t.thread_name(1, "worker-0");
        t.begin(0, "execute", 10, &[("jobs", "2")]);
        t.complete(1, "simulate", 12, 30, &[("key", "abc")]);
        t.counter(0, "cells", 42, "done", 1);
        t.end(0, 50);
        let stats = validate_trace_json(&t.finish()).expect("builder output is valid");
        assert_eq!(stats.events, 6);
        assert_eq!(stats.tracks, 2);
    }

    #[test]
    fn validator_rejects_unbalanced_and_regressing_traces() {
        // Unbalanced: B without E.
        let mut t = TraceBuilder::new();
        t.begin(0, "open", 1, &[]);
        let err = validate_trace_json(&t.finish()).unwrap_err();
        assert!(err.contains("unclosed"), "{err}");

        // E without B.
        let mut t = TraceBuilder::new();
        t.end(0, 5);
        let err = validate_trace_json(&t.finish()).unwrap_err();
        assert!(err.contains("E without open B"), "{err}");

        // Per-track timestamp regression.
        let mut t = TraceBuilder::new();
        t.complete(0, "a", 100, 1, &[]);
        t.complete(0, "b", 50, 1, &[]);
        let err = validate_trace_json(&t.finish()).unwrap_err();
        assert!(err.contains("regresses"), "{err}");

        // Different tracks keep independent clocks.
        let mut t = TraceBuilder::new();
        t.complete(0, "a", 100, 1, &[]);
        t.complete(1, "b", 50, 1, &[]);
        assert!(validate_trace_json(&t.finish()).is_ok());

        // Garbage in, error out.
        assert!(validate_trace_json("not json").is_err());
        assert!(validate_trace_json("{}").is_err());
    }
}
