//! The experiment engine: dedupe → resume → parallel execute → persist.
//!
//! [`Engine::run_all`] takes an arbitrary job list (duplicates welcome —
//! figures freely re-request the same configurations) and:
//!
//! 1. deduplicates by content key ([`JobSpec::key`]),
//! 2. resolves what it can from the in-memory cache and the on-disk
//!    [`ResultStore`] (canonical strings are compared, so a hash
//!    collision falls through to a re-run instead of returning the wrong
//!    report),
//! 3. pre-generates the traces the remaining jobs need (in parallel, one
//!    generation per distinct trace),
//! 4. runs the remaining jobs on the worker pool, appending each result
//!    to the store the moment it completes — a killed run resumes from
//!    exactly the jobs it finished,
//! 5. writes a run manifest (JSON) and a per-job timing table (CSV), and
//! 6. returns reports in the order of the *request*, independent of
//!    worker count.

use crate::job::JobSpec;
use crate::json::{obj, Json};
use crate::pool;
use crate::store::{ResultStore, StoredResult};
use secpref_obs::ObsSummary;
use secpref_sim::{ObsConfig, SimReport, TelConfig};
use secpref_telemetry::{progress::stderr_is_tty, Progress, TraceBuilder};
use secpref_trace::suite;
use std::collections::{HashMap, HashSet};
use std::io::{self, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

/// Where a job's report came from in this run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ResultSource {
    /// Already computed earlier in this process.
    Memory,
    /// Loaded from the on-disk result store (a resumed job).
    Store,
    /// Simulated during this run.
    Ran,
}

impl ResultSource {
    fn name(self) -> &'static str {
        match self {
            ResultSource::Memory => "memory",
            ResultSource::Store => "store",
            ResultSource::Ran => "ran",
        }
    }
}

/// Per-job record in a run's manifest and timing export.
#[derive(Clone, Debug)]
pub struct JobRecord {
    /// Content key.
    pub key: String,
    /// Human-readable label.
    pub label: String,
    /// Where the report came from.
    pub source: ResultSource,
    /// Wall-clock of the simulation (zero for cached results).
    pub wall: Duration,
    /// Observability summary (traced runs only).
    pub obs: Option<ObsSummary>,
    /// Total histogram samples (telemetry runs only).
    pub tel_samples: Option<u64>,
}

/// Summary of one [`Engine::run_all`] invocation.
#[derive(Clone, Debug)]
pub struct RunSummary {
    /// Unique id of this run (also names the manifest/timing files).
    pub run_id: String,
    /// Jobs requested (before dedupe).
    pub jobs_requested: usize,
    /// Distinct jobs after dedupe.
    pub jobs_unique: usize,
    /// Served from the in-process cache.
    pub from_memory: usize,
    /// Resumed from the on-disk store.
    pub from_store: usize,
    /// Actually simulated.
    pub executed: usize,
    /// Total wall-clock of the run.
    pub wall: Duration,
    /// Path of the manifest written for this run.
    pub manifest_path: PathBuf,
    /// Path of the per-job timing CSV.
    pub timings_path: PathBuf,
    /// Worker utilization over the execute phase: simulated wall-clock
    /// divided by `workers × phase duration` (0 when nothing ran).
    pub utilization: f64,
    /// Fraction of requested jobs served without fresh simulation
    /// (request-level duplicates plus memory/store hits).
    pub dedup_hit_rate: f64,
    /// Path of the span-trace JSON exported for this run (engine spans on
    /// per-worker tracks, loadable in Perfetto), when one was written.
    pub trace_path: Option<PathBuf>,
    /// One record per unique job.
    pub jobs: Vec<JobRecord>,
}

/// Parallel, resumable experiment runner.
///
/// An engine owns a result store directory and a worker count. It is
/// safe to share one engine across threads (`run_one` from concurrent
/// tests, say); `run_all` itself is what parallelizes a sweep.
#[derive(Debug)]
pub struct Engine {
    store: ResultStore,
    workers: usize,
    verbose: bool,
    mem: Mutex<HashMap<String, SimReport>>,
    disk: Mutex<Option<HashMap<String, StoredResult>>>,
}

/// Process-wide run counter. Run ids embed `(unix second, pid, seq)`;
/// the sequence must be global — with a per-engine counter, two engines
/// created in the same process and second (e.g. a cold run and a resume
/// check in one test) would mint the same id and overwrite each other's
/// manifests.
static RUN_SEQ: AtomicU64 = AtomicU64::new(0);

impl Engine {
    /// Creates an engine over the store at `dir` with a fixed worker
    /// count (clamped to ≥ 1).
    ///
    /// # Errors
    ///
    /// Propagates store-directory creation failures.
    pub fn new(dir: impl Into<PathBuf>, workers: usize) -> io::Result<Self> {
        Ok(Engine {
            store: ResultStore::open(dir.into())?,
            workers: workers.max(1),
            verbose: false,
            mem: Mutex::new(HashMap::new()),
            disk: Mutex::new(None),
        })
    }

    /// Builds an engine from the environment:
    /// `SECPREF_EXP_DIR` (default `target/exp`) and
    /// `SECPREF_EXP_WORKERS` (default: available parallelism).
    ///
    /// # Errors
    ///
    /// Propagates store-directory creation failures.
    pub fn from_env() -> io::Result<Self> {
        let dir = std::env::var("SECPREF_EXP_DIR").unwrap_or_else(|_| "target/exp".to_string());
        let workers = std::env::var("SECPREF_EXP_WORKERS")
            .ok()
            .and_then(|w| w.parse().ok())
            .unwrap_or_else(default_workers);
        Engine::new(dir, workers)
    }

    /// Enables/disables progress lines on stderr.
    pub fn with_verbose(mut self, verbose: bool) -> Self {
        self.verbose = verbose;
        self
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The store directory.
    pub fn store_dir(&self) -> &std::path::Path {
        self.store.dir()
    }

    /// Runs a sweep and returns reports in request order. See the module
    /// docs for the phases. Convenience wrapper over
    /// [`Engine::run_all_with_summary`].
    pub fn run_all(&self, jobs: &[JobSpec]) -> Vec<SimReport> {
        self.run_all_with_summary(jobs).0
    }

    /// Runs a sweep, returning the reports plus the run's summary
    /// (job provenance counts, manifest path, timings).
    pub fn run_all_with_summary(&self, jobs: &[JobSpec]) -> (Vec<SimReport>, RunSummary) {
        let t0 = Instant::now();
        let run_id = self.next_run_id();
        let us = |d: Duration| d.as_micros() as u64;
        let mut tb = TraceBuilder::new();
        tb.thread_name(0, "engine");

        // Phase 1: dedupe, preserving first-occurrence order.
        let keyed: Vec<(String, String)> = jobs.iter().map(|j| (j.key(), j.canonical())).collect();
        let mut seen = HashSet::new();
        let mut unique: Vec<usize> = Vec::new();
        for (i, (key, _)) in keyed.iter().enumerate() {
            if seen.insert(key.clone()) {
                unique.push(i);
            }
        }
        let n_req = jobs.len().to_string();
        tb.complete(0, "dedup", 0, us(t0.elapsed()), &[("requested", &n_req)]);

        // Phase 2: resolve from memory, then from the on-disk store. The
        // per-job dedup-hit/miss events below carry later timestamps, so
        // this span must OPEN before them (a trailing `X` with the phase's
        // start time would regress the engine track's event order, which
        // the validator rejects).
        tb.begin(0, "resolve", us(t0.elapsed()), &[]);
        let mut records: HashMap<String, JobRecord> = HashMap::new();
        let mut to_run: Vec<usize> = Vec::new();
        {
            let mem = self.mem.lock().expect("engine mem cache");
            let mut disk = self.disk.lock().expect("engine disk cache");
            let disk = disk.get_or_insert_with(|| self.store.load());
            let mut mem_inserts: Vec<(String, SimReport)> = Vec::new();
            for &i in &unique {
                let (key, canonical) = &keyed[i];
                let source = if mem.contains_key(key) {
                    Some(ResultSource::Memory)
                } else if let Some(stored) = disk.get(key) {
                    if &stored.canonical == canonical {
                        mem_inserts.push((key.clone(), stored.report.clone()));
                        Some(ResultSource::Store)
                    } else {
                        // Hash collision or stale canonical: re-run.
                        None
                    }
                } else {
                    None
                };
                match source {
                    Some(src) => {
                        tb.complete(
                            0,
                            "dedup-hit",
                            us(t0.elapsed()),
                            0,
                            &[("key", key), ("source", src.name())],
                        );
                        records.insert(
                            key.clone(),
                            JobRecord {
                                key: key.clone(),
                                label: jobs[i].label(),
                                source: src,
                                wall: Duration::ZERO,
                                obs: None,
                                tel_samples: None,
                            },
                        );
                    }
                    None => {
                        tb.complete(0, "dedup-miss", us(t0.elapsed()), 0, &[("key", key)]);
                        to_run.push(i);
                    }
                }
            }
            drop(mem);
            let mut mem = self.mem.lock().expect("engine mem cache");
            for (k, r) in mem_inserts {
                mem.insert(k, r);
            }
        }
        tb.end(0, us(t0.elapsed()));

        let from_memory = records
            .values()
            .filter(|r| r.source == ResultSource::Memory)
            .count();
        let from_store = records
            .values()
            .filter(|r| r.source == ResultSource::Store)
            .count();
        self.say(&format!(
            "[exp] run {run_id}: {} jobs requested, {} unique, {} from memory, {} from store, {} to run on {} workers",
            jobs.len(),
            unique.len(),
            from_memory,
            from_store,
            to_run.len(),
            self.workers,
        ));

        // Phase 3: pre-generate traces so workers hit a warm trace cache
        // instead of serializing on generation.
        let run_specs: Vec<JobSpec> = to_run.iter().map(|&i| jobs[i].clone()).collect();
        let pregen_start = t0.elapsed();
        self.pregenerate_traces(&run_specs);
        tb.complete(
            0,
            "trace-acquire",
            us(pregen_start),
            us(t0.elapsed().saturating_sub(pregen_start)),
            &[],
        );

        // Phase 4: execute, persisting and reporting each completion.
        // Span layout: one track per worker (simulate spans), with dedup,
        // store-append, and phase spans on the engine track.
        let total = run_specs.len();
        for w in 0..self.workers.clamp(1, total.max(1)) {
            tb.thread_name(w as u32 + 1, &format!("worker-{w}"));
        }
        let n_total = total.to_string();
        tb.begin(0, "execute", us(t0.elapsed()), &[("jobs", &n_total)]);
        let exec_base = t0.elapsed();
        let mut progress = Progress::new(unique.len() as u64, self.verbose && stderr_is_tty());
        progress.set_dedup_hits((unique.len() - total) as u64);
        for _ in 0..unique.len() - total {
            if let Some(line) = progress.tick(0) {
                eprint!(
                    "
{line}"
                );
            }
        }
        let done = AtomicUsize::new(0);
        let outcomes = pool::run_items_timed(
            &run_specs,
            self.workers,
            JobSpec::run,
            |idx, job, report, timing| {
                let (key, canonical) = &keyed[to_run[idx]];
                let append_start = t0.elapsed();
                if let Err(e) = self.store.append(key, canonical, report) {
                    self.say(&format!("[exp] warning: store append failed: {e}"));
                }
                tb.complete(
                    timing.worker as u32 + 1,
                    "simulate",
                    us(exec_base + timing.start),
                    us(timing.wall),
                    &[("key", key), ("label", &job.label())],
                );
                tb.complete(
                    0,
                    "store-append",
                    us(append_start),
                    us(t0.elapsed().saturating_sub(append_start)),
                    &[("key", key)],
                );
                let n = done.fetch_add(1, Ordering::Relaxed) + 1;
                tb.counter(0, "cells", us(t0.elapsed()), "done", n as u64);
                let instr: u64 = report.cores.iter().map(|m| m.instructions).sum();
                if let Some(line) = progress.tick(instr) {
                    eprint!(
                        "
{line}"
                    );
                } else if !progress.is_enabled() {
                    let elapsed = t0.elapsed();
                    let eta = if n > 0 {
                        elapsed.mul_f64((total - n) as f64 / n as f64)
                    } else {
                        Duration::ZERO
                    };
                    self.say(&format!(
                        "[exp] {n}/{total} ({:.0}%) elapsed {} eta {} — {} in {}",
                        n as f64 * 100.0 / total.max(1) as f64,
                        fmt_secs(elapsed),
                        fmt_secs(eta),
                        job.label(),
                        fmt_secs(timing.wall),
                    ));
                }
            },
        );
        if progress.needs_newline() {
            eprintln!();
        }
        let exec_wall = t0.elapsed().saturating_sub(exec_base);
        tb.end(0, us(t0.elapsed()));
        {
            let mut mem = self.mem.lock().expect("engine mem cache");
            for (idx, (report, wall)) in outcomes.iter().enumerate() {
                let (key, _) = &keyed[to_run[idx]];
                mem.insert(key.clone(), report.clone());
                records.insert(
                    key.clone(),
                    JobRecord {
                        key: key.clone(),
                        label: run_specs[idx].label(),
                        source: ResultSource::Ran,
                        wall: *wall,
                        obs: None,
                        tel_samples: None,
                    },
                );
            }
        }

        // Phase 5: manifest + timings + span trace, then assemble
        // request-order output.
        let job_records: Vec<JobRecord> = unique
            .iter()
            .map(|&i| records[&keyed[i].0].clone())
            .collect();
        let wall = t0.elapsed();
        let sim_wall: Duration = outcomes.iter().map(|(_, w)| *w).sum();
        let trace_path = self.write_span_trace(&run_id, tb);
        let summary = self.write_observability(RunSummary {
            run_id: run_id.clone(),
            jobs_requested: jobs.len(),
            jobs_unique: unique.len(),
            from_memory,
            from_store,
            executed: total,
            wall,
            manifest_path: PathBuf::new(),
            timings_path: PathBuf::new(),
            utilization: utilization(sim_wall, exec_wall, self.workers, total),
            dedup_hit_rate: dedup_hit_rate(jobs.len(), total),
            trace_path,
            jobs: job_records,
        });

        let mem = self.mem.lock().expect("engine mem cache");
        let reports = keyed.iter().map(|(key, _)| mem[key].clone()).collect();
        self.say(&format!(
            "[exp] run {run_id} done in {} ({} simulated, {} reused); manifest {}",
            fmt_secs(wall),
            summary.executed,
            summary.from_memory + summary.from_store,
            summary.manifest_path.display(),
        ));
        (reports, summary)
    }

    /// Runs every unique job with an observability recorder attached and
    /// exports trace artifacts under `<store_dir>/obs/`.
    ///
    /// Traced runs are a *diagnostic* mode: they always re-simulate and
    /// never read from or write to the result store or the in-process
    /// cache. That keeps the artifacts a pure function of `(job, obs)` —
    /// byte-identical across worker counts and across cold/resumed
    /// engines — and keeps diagnostic runs from polluting the store with
    /// results that sweeps would then trust.
    ///
    /// Artifacts (`<key>.events.jsonl`, `<key>.epochs.csv`) are written
    /// from the `on_done` callback on the calling thread, so artifact
    /// I/O is single-threaded without extra locks. The run manifest gains
    /// an `obs` object per job. Reports come back in request order.
    pub fn run_traced(&self, jobs: &[JobSpec], obs: &ObsConfig) -> (Vec<SimReport>, RunSummary) {
        let t0 = Instant::now();
        let run_id = self.next_run_id();
        let obs_dir = self.store.dir().join("obs");

        // Dedupe, preserving first-occurrence order (same as run_all).
        let keyed: Vec<String> = jobs.iter().map(JobSpec::key).collect();
        let mut seen = HashSet::new();
        let mut unique: Vec<usize> = Vec::new();
        for (i, key) in keyed.iter().enumerate() {
            if seen.insert(key.clone()) {
                unique.push(i);
            }
        }
        let run_specs: Vec<JobSpec> = unique.iter().map(|&i| jobs[i].clone()).collect();
        self.say(&format!(
            "[exp] traced run {run_id}: {} jobs requested, {} unique, artifacts under {}",
            jobs.len(),
            unique.len(),
            obs_dir.display(),
        ));
        self.pregenerate_traces(&run_specs);

        let total = run_specs.len();
        let done = AtomicUsize::new(0);
        let mut job_records: Vec<JobRecord> = Vec::with_capacity(total);
        let outcomes = pool::run_jobs_with(
            &run_specs,
            self.workers,
            |job| job.run_traced(obs),
            |idx, job, (_, capture), wall| {
                let key = &keyed[unique[idx]];
                let summary = capture.as_ref().map(|cap| {
                    match crate::obs::write_trace_artifacts(&obs_dir, key, obs, cap) {
                        Ok((events, _)) => self.say(&format!("[exp] wrote {}", events.display())),
                        Err(e) => self.say(&format!("[exp] warning: artifact write failed: {e}")),
                    }
                    cap.summary()
                });
                job_records.push(JobRecord {
                    key: key.clone(),
                    label: job.label(),
                    source: ResultSource::Ran,
                    wall,
                    obs: summary,
                    tel_samples: None,
                });
                let n = done.fetch_add(1, Ordering::Relaxed) + 1;
                self.say(&format!(
                    "[exp] {n}/{total} traced — {} in {}",
                    job.label(),
                    fmt_secs(wall),
                ));
            },
        );
        // on_done fires in completion order; the manifest lists jobs in
        // request order, so sort the records back by key position.
        job_records.sort_by_key(|r| {
            unique
                .iter()
                .position(|&i| keyed[i] == r.key)
                .unwrap_or(usize::MAX)
        });

        let wall = t0.elapsed();
        let sim_wall: Duration = outcomes.iter().map(|(_, w)| *w).sum();
        let summary = self.write_observability(RunSummary {
            run_id: run_id.clone(),
            jobs_requested: jobs.len(),
            jobs_unique: unique.len(),
            from_memory: 0,
            from_store: 0,
            executed: total,
            wall,
            manifest_path: PathBuf::new(),
            timings_path: PathBuf::new(),
            utilization: utilization(sim_wall, wall, self.workers, total),
            dedup_hit_rate: dedup_hit_rate(jobs.len(), total),
            trace_path: None,
            jobs: job_records,
        });

        // Request-order reports (duplicates share the unique job's run).
        let by_key: HashMap<&String, &SimReport> = unique
            .iter()
            .zip(&outcomes)
            .map(|(&i, ((report, _), _))| (&keyed[i], report))
            .collect();
        let reports = keyed.iter().map(|key| by_key[key].clone()).collect();
        self.say(&format!(
            "[exp] traced run {run_id} done in {} ({} simulated); manifest {}",
            fmt_secs(wall),
            total,
            summary.manifest_path.display(),
        ));
        (reports, summary)
    }

    /// Runs every unique job with a telemetry recorder attached, exports
    /// `<key>.hist.csv` histogram artifacts under
    /// `<store_dir>/telemetry/`, and writes the run's engine span trace
    /// (`trace-<run_id>.json`, Chrome trace-event format) next to them.
    ///
    /// Like [`Engine::run_traced`], telemetry runs are a diagnostic mode:
    /// they always re-simulate and never touch the result store or the
    /// in-process cache, which keeps the histogram artifacts a pure
    /// function of the job — byte-identical across worker counts and
    /// across cold/resumed engines. The span-trace JSON embeds wall-clock
    /// durations, so it is validated structurally (balanced `B`/`E`,
    /// monotonic per-track timestamps), never byte-compared.
    pub fn run_telemetry(&self, jobs: &[JobSpec], tel: &TelConfig) -> (Vec<SimReport>, RunSummary) {
        let t0 = Instant::now();
        let run_id = self.next_run_id();
        let tel_dir = self.store.dir().join("telemetry");
        let us = |d: Duration| d.as_micros() as u64;
        let mut tb = TraceBuilder::new();
        tb.thread_name(0, "engine");

        // Dedupe, preserving first-occurrence order (same as run_all).
        let keyed: Vec<String> = jobs.iter().map(JobSpec::key).collect();
        let mut seen = HashSet::new();
        let mut unique: Vec<usize> = Vec::new();
        for (i, key) in keyed.iter().enumerate() {
            if seen.insert(key.clone()) {
                unique.push(i);
            }
        }
        let run_specs: Vec<JobSpec> = unique.iter().map(|&i| jobs[i].clone()).collect();
        self.say(&format!(
            "[exp] telemetry run {run_id}: {} jobs requested, {} unique, artifacts under {}",
            jobs.len(),
            unique.len(),
            tel_dir.display(),
        ));
        let pregen_start = t0.elapsed();
        self.pregenerate_traces(&run_specs);
        tb.complete(
            0,
            "trace-acquire",
            us(pregen_start),
            us(t0.elapsed().saturating_sub(pregen_start)),
            &[],
        );

        let total = run_specs.len();
        for w in 0..self.workers.clamp(1, total.max(1)) {
            tb.thread_name(w as u32 + 1, &format!("worker-{w}"));
        }
        let n_total = total.to_string();
        tb.begin(0, "execute", us(t0.elapsed()), &[("jobs", &n_total)]);
        let exec_base = t0.elapsed();
        let mut progress = Progress::new(total as u64, self.verbose && stderr_is_tty());
        let done = AtomicUsize::new(0);
        let mut job_records: Vec<JobRecord> = Vec::with_capacity(total);
        let outcomes = pool::run_items_timed(
            &run_specs,
            self.workers,
            |job| job.run_telemetry(tel),
            |idx, job, (report, capture), timing| {
                let key = &keyed[unique[idx]];
                let samples = capture.as_ref().map(|cap| {
                    let export_start = t0.elapsed();
                    match crate::telemetry::write_tel_artifacts(&tel_dir, key, cap) {
                        Ok(p) => self.say(&format!("[exp] wrote {}", p.display())),
                        Err(e) => self.say(&format!("[exp] warning: artifact write failed: {e}")),
                    }
                    tb.complete(
                        0,
                        "hist-export",
                        us(export_start),
                        us(t0.elapsed().saturating_sub(export_start)),
                        &[("key", key)],
                    );
                    cap.total_samples()
                });
                tb.complete(
                    timing.worker as u32 + 1,
                    "simulate",
                    us(exec_base + timing.start),
                    us(timing.wall),
                    &[("key", key), ("label", &job.label())],
                );
                job_records.push(JobRecord {
                    key: key.clone(),
                    label: job.label(),
                    source: ResultSource::Ran,
                    wall: timing.wall,
                    obs: None,
                    tel_samples: samples,
                });
                let n = done.fetch_add(1, Ordering::Relaxed) + 1;
                tb.counter(0, "cells", us(t0.elapsed()), "done", n as u64);
                let instr: u64 = report.cores.iter().map(|m| m.instructions).sum();
                if let Some(line) = progress.tick(instr) {
                    eprint!(
                        "
{line}"
                    );
                } else if !progress.is_enabled() {
                    self.say(&format!(
                        "[exp] {n}/{total} telemetry — {} in {}",
                        job.label(),
                        fmt_secs(timing.wall),
                    ));
                }
            },
        );
        if progress.needs_newline() {
            eprintln!();
        }
        let exec_wall = t0.elapsed().saturating_sub(exec_base);
        tb.end(0, us(t0.elapsed()));
        // on_done fires in completion order; the manifest lists jobs in
        // request order, so sort the records back by key position.
        job_records.sort_by_key(|r| {
            unique
                .iter()
                .position(|&i| keyed[i] == r.key)
                .unwrap_or(usize::MAX)
        });

        let wall = t0.elapsed();
        let sim_wall: Duration = outcomes.iter().map(|(_, w)| *w).sum();
        let trace_path = self.write_span_trace(&run_id, tb);
        let summary = self.write_observability(RunSummary {
            run_id: run_id.clone(),
            jobs_requested: jobs.len(),
            jobs_unique: unique.len(),
            from_memory: 0,
            from_store: 0,
            executed: total,
            wall,
            manifest_path: PathBuf::new(),
            timings_path: PathBuf::new(),
            utilization: utilization(sim_wall, exec_wall, self.workers, total),
            dedup_hit_rate: dedup_hit_rate(jobs.len(), total),
            trace_path,
            jobs: job_records,
        });

        // Request-order reports (duplicates share the unique job's run).
        let by_key: HashMap<&String, &SimReport> = unique
            .iter()
            .zip(&outcomes)
            .map(|(&i, ((report, _), _))| (&keyed[i], report))
            .collect();
        let reports = keyed.iter().map(|key| by_key[key].clone()).collect();
        self.say(&format!(
            "[exp] telemetry run {run_id} done in {} ({} simulated); manifest {}",
            fmt_secs(wall),
            total,
            summary.manifest_path.display(),
        ));
        (reports, summary)
    }

    /// Writes the run's span trace as Chrome trace-event JSON under
    /// `<store_dir>/telemetry/trace-<run_id>.json`. I/O failures degrade
    /// to a warning and `None` — span export must never kill a run.
    fn write_span_trace(&self, run_id: &str, tb: TraceBuilder) -> Option<PathBuf> {
        let dir = self.store.dir().join("telemetry");
        if let Err(e) = std::fs::create_dir_all(&dir) {
            self.say(&format!("[exp] warning: trace dir failed: {e}"));
            return None;
        }
        let path = dir.join(format!("trace-{run_id}.json"));
        match std::fs::write(&path, tb.finish() + "\n") {
            Ok(()) => Some(path),
            Err(e) => {
                self.say(&format!("[exp] warning: trace write failed: {e}"));
                None
            }
        }
    }

    /// Runs (or fetches) a single job: memory → store → simulate inline.
    pub fn run_one(&self, job: &JobSpec) -> SimReport {
        let key = job.key();
        if let Some(r) = self.mem.lock().expect("engine mem cache").get(&key) {
            return r.clone();
        }
        let canonical = job.canonical();
        {
            let mut disk = self.disk.lock().expect("engine disk cache");
            let disk = disk.get_or_insert_with(|| self.store.load());
            if let Some(stored) = disk.get(&key) {
                if stored.canonical == canonical {
                    let report = stored.report.clone();
                    self.mem
                        .lock()
                        .expect("engine mem cache")
                        .insert(key, report.clone());
                    return report;
                }
            }
        }
        let report = job.run();
        if let Err(e) = self.store.append(&key, &canonical, &report) {
            self.say(&format!("[exp] warning: store append failed: {e}"));
        }
        self.mem
            .lock()
            .expect("engine mem cache")
            .insert(key, report.clone());
        report
    }

    /// Generates every distinct trace the given jobs need, in parallel,
    /// so the job phase finds them in the suite's cache.
    fn pregenerate_traces(&self, jobs: &[JobSpec]) {
        let mut needed: Vec<(String, usize)> = Vec::new();
        let mut seen = HashSet::new();
        for job in jobs {
            let len = job.scale.trace_len();
            for name in job.workload.trace_names() {
                if seen.insert((name.to_string(), len)) {
                    needed.push((name.to_string(), len));
                }
            }
        }
        if needed.is_empty() {
            return;
        }
        self.say(&format!(
            "[exp] generating {} trace(s) on {} workers",
            needed.len(),
            self.workers,
        ));
        let cursor = AtomicUsize::new(0);
        let threads = self.workers.clamp(1, needed.len());
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let cursor = &cursor;
                let needed = &needed;
                scope.spawn(move || loop {
                    let idx = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some((name, len)) = needed.get(idx) else {
                        break;
                    };
                    let _ = suite::cached_trace(name, *len);
                });
            }
        });
    }

    /// Writes the run manifest (JSON) and timing table (CSV); fills in
    /// their paths on the summary. I/O failures degrade to a warning —
    /// observability must never kill a finished run.
    fn write_observability(&self, mut summary: RunSummary) -> RunSummary {
        let manifest_path = self
            .store
            .dir()
            .join(format!("manifest-{}.json", summary.run_id));
        let timings_path = self
            .store
            .dir()
            .join(format!("timings-{}.csv", summary.run_id));

        let jobs_json: Vec<Json> = summary
            .jobs
            .iter()
            .map(|r| {
                let mut fields = vec![
                    ("key", Json::Str(r.key.clone())),
                    ("label", Json::Str(r.label.clone())),
                    ("source", Json::Str(r.source.name().to_string())),
                    ("wall_ms", Json::Float(r.wall.as_secs_f64() * 1e3)),
                ];
                if let Some(obs) = &r.obs {
                    fields.push((
                        "obs",
                        obj(vec![
                            ("events_recorded", Json::UInt(obs.events_recorded)),
                            ("events_stored", Json::UInt(obs.events_stored)),
                            ("events_dropped", Json::UInt(obs.events_dropped)),
                            ("epochs", Json::UInt(obs.epochs)),
                        ]),
                    ));
                }
                if let Some(samples) = r.tel_samples {
                    fields.push(("tel", obj(vec![("samples", Json::UInt(samples))])));
                }
                obj(fields)
            })
            .collect();
        let manifest = obj(vec![
            ("run_id", Json::Str(summary.run_id.clone())),
            ("git", Json::Str(git_describe())),
            ("started_unix", Json::UInt(unix_now())),
            ("workers", Json::UInt(self.workers as u64)),
            ("wall_s", Json::Float(summary.wall.as_secs_f64())),
            ("jobs_requested", Json::UInt(summary.jobs_requested as u64)),
            ("jobs_unique", Json::UInt(summary.jobs_unique as u64)),
            ("jobs_from_memory", Json::UInt(summary.from_memory as u64)),
            ("jobs_from_store", Json::UInt(summary.from_store as u64)),
            ("jobs_executed", Json::UInt(summary.executed as u64)),
            ("utilization", Json::Float(summary.utilization)),
            ("dedup_hit_rate", Json::Float(summary.dedup_hit_rate)),
            (
                "results_file",
                Json::Str(self.store.results_path().display().to_string()),
            ),
            (
                "trace_file",
                Json::Str(
                    summary
                        .trace_path
                        .as_ref()
                        .map(|p| p.display().to_string())
                        .unwrap_or_default(),
                ),
            ),
            ("jobs", Json::Arr(jobs_json)),
        ]);
        if let Err(e) = std::fs::write(&manifest_path, manifest.to_string() + "\n") {
            self.say(&format!("[exp] warning: manifest write failed: {e}"));
        }

        let mut csv = String::from("key,label,source,wall_ms\n");
        for r in &summary.jobs {
            csv.push_str(&format!(
                "{},\"{}\",{},{:.3}\n",
                r.key,
                r.label.replace('"', "\"\""),
                r.source.name(),
                r.wall.as_secs_f64() * 1e3,
            ));
        }
        if let Err(e) = std::fs::write(&timings_path, csv) {
            self.say(&format!("[exp] warning: timings write failed: {e}"));
        }

        summary.manifest_path = manifest_path;
        summary.timings_path = timings_path;
        summary
    }

    fn next_run_id(&self) -> String {
        format!(
            "{}-{}-{}",
            unix_now(),
            std::process::id(),
            RUN_SEQ.fetch_add(1, Ordering::Relaxed),
        )
    }

    fn say(&self, line: &str) {
        if self.verbose {
            let _ = writeln!(io::stderr(), "{line}");
        }
    }
}

/// Default worker count: the machine's available parallelism.
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

fn unix_now() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

fn git_describe() -> String {
    std::process::Command::new("git")
        .args(["describe", "--always", "--dirty"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Worker utilization: total simulated wall-clock over the capacity the
/// execute phase had (`workers × phase duration`), clamped to [0, 1].
fn utilization(sim_wall: Duration, exec_wall: Duration, workers: usize, jobs: usize) -> f64 {
    if jobs == 0 || exec_wall.is_zero() {
        return 0.0;
    }
    let capacity = exec_wall.as_secs_f64() * workers.clamp(1, jobs) as f64;
    (sim_wall.as_secs_f64() / capacity).clamp(0.0, 1.0)
}

/// Fraction of requested jobs that did not need fresh simulation.
fn dedup_hit_rate(requested: usize, executed: usize) -> f64 {
    if requested == 0 {
        return 0.0;
    }
    (requested.saturating_sub(executed)) as f64 / requested as f64
}

fn fmt_secs(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s < 10.0 {
        format!("{s:.2}s")
    } else if s < 600.0 {
        format!("{s:.1}s")
    } else {
        format!("{:.1}m", s / 60.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scale::ExpScale;
    use secpref_types::SystemConfig;
    use std::path::Path;

    fn tmp_dir(tag: &str) -> PathBuf {
        let d =
            std::env::temp_dir().join(format!("secpref-engine-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn jobs() -> Vec<JobSpec> {
        let base = SystemConfig::baseline(1);
        vec![
            JobSpec::single(base.clone(), "leela_like", ExpScale::Quick),
            JobSpec::single(base.clone(), "gcc_like", ExpScale::Quick),
            // Duplicate of job 0 — must be deduplicated, not re-run.
            JobSpec::single(base, "leela_like", ExpScale::Quick),
        ]
    }

    fn cleanup(p: &Path) {
        let _ = std::fs::remove_dir_all(p);
    }

    #[test]
    fn dedupes_and_returns_request_order() {
        let dir = tmp_dir("dedupe");
        let engine = Engine::new(&dir, 2).unwrap();
        let (reports, summary) = engine.run_all_with_summary(&jobs());
        assert_eq!(reports.len(), 3);
        assert_eq!(summary.jobs_requested, 3);
        assert_eq!(summary.jobs_unique, 2);
        assert_eq!(summary.executed, 2);
        // Duplicate job returns the identical report.
        assert_eq!(reports[0].cores[0].cycles, reports[2].cores[0].cycles);
        assert_eq!(reports[0].label, reports[2].label);
        cleanup(&dir);
    }

    #[test]
    fn second_run_comes_from_memory() {
        let dir = tmp_dir("mem");
        let engine = Engine::new(&dir, 2).unwrap();
        engine.run_all(&jobs());
        let (_, summary) = engine.run_all_with_summary(&jobs());
        assert_eq!(summary.executed, 0);
        assert_eq!(summary.from_memory, 2);
        cleanup(&dir);
    }

    #[test]
    fn fresh_engine_resumes_from_store() {
        let dir = tmp_dir("resume");
        let cold = Engine::new(&dir, 2).unwrap();
        let (cold_reports, cold_summary) = cold.run_all_with_summary(&jobs());
        assert_eq!(cold_summary.executed, 2);
        drop(cold);
        let warm = Engine::new(&dir, 2).unwrap();
        let (warm_reports, warm_summary) = warm.run_all_with_summary(&jobs());
        assert_eq!(warm_summary.executed, 0);
        assert_eq!(warm_summary.from_store, 2);
        for (a, b) in cold_reports.iter().zip(&warm_reports) {
            assert_eq!(
                crate::codec::report_to_string(a),
                crate::codec::report_to_string(b),
            );
        }
        cleanup(&dir);
    }

    #[test]
    fn manifest_and_timings_are_written() {
        let dir = tmp_dir("manifest");
        let engine = Engine::new(&dir, 1).unwrap();
        let (_, summary) = engine.run_all_with_summary(&jobs());
        let manifest = std::fs::read_to_string(&summary.manifest_path).unwrap();
        let json = crate::json::parse(manifest.trim()).unwrap();
        assert_eq!(json.get("jobs_unique").unwrap().as_u64(), Some(2));
        assert_eq!(json.get("jobs_executed").unwrap().as_u64(), Some(2));
        assert_eq!(json.get("jobs").unwrap().as_arr().unwrap().len(), 2);
        let csv = std::fs::read_to_string(&summary.timings_path).unwrap();
        assert!(csv.starts_with("key,label,source,wall_ms\n"));
        assert_eq!(csv.lines().count(), 3);
        cleanup(&dir);
    }

    #[test]
    fn run_one_hits_store_across_engines() {
        let dir = tmp_dir("runone");
        let job = JobSpec::single(SystemConfig::baseline(1), "leela_like", ExpScale::Quick);
        let a = Engine::new(&dir, 1).unwrap().run_one(&job);
        let b = Engine::new(&dir, 1).unwrap().run_one(&job);
        assert_eq!(
            crate::codec::report_to_string(&a),
            crate::codec::report_to_string(&b),
        );
        cleanup(&dir);
    }
}
