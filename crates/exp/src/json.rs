//! Minimal JSON reader/writer for the result store and run manifests.
//!
//! The workspace builds with no external crates, so the experiment engine
//! carries its own JSON support: a value model, a recursive-descent parser,
//! and a compact writer. Scope is exactly what the engine needs —
//! UTF-8 strings, `u64` counters kept exact (never routed through `f64`),
//! and round-trippable `f64` via Rust's shortest-representation formatting.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Non-negative integer (kept exact — counters must not lose bits).
    UInt(u64),
    /// Any other number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object as an ordered field list (insertion order preserved).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a field of an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `u64`, if it is an exact non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as `f64` (integers convert losslessly when possible).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::UInt(v) => Some(*v as f64),
            Json::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Float(v) => write_f64(out, *v),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Serializes compactly (no whitespace), deterministically.
impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

/// Writes an `f64` so that parsing it back returns the identical bits
/// (Rust's default float formatting is shortest-round-trip).
fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let s = format!("{v:?}");
        out.push_str(&s);
    } else {
        // JSON has no NaN/inf; encode as null and let decoders treat it
        // as 0 — simulation outputs are always finite, so this is a
        // belt-and-braces path, not an expected one.
        out.push_str("null");
    }
}

/// Writes a JSON string literal with escaping.
fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document.
///
/// # Errors
///
/// Returns a message with the byte offset on malformed input or trailing
/// garbage.
pub fn parse(input: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so byte
                    // boundaries are safe to re-decode).
                    let rest = &self.bytes[self.pos..];
                    let ch = std::str::from_utf8(rest)
                        .map_err(|_| "invalid utf-8")?
                        .chars()
                        .next()
                        .ok_or("unterminated string")?;
                    s.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let tok = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        if !is_float && !tok.starts_with('-') {
            if let Ok(v) = tok.parse::<u64>() {
                return Ok(Json::UInt(v));
            }
        }
        tok.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| format!("bad number `{tok}` at byte {start}"))
    }
}

/// Convenience: builds an object from `(key, value)` pairs.
pub fn obj(fields: Vec<(&str, Json)>) -> Json {
    Json::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars() {
        for src in [
            "null",
            "true",
            "false",
            "0",
            "18446744073709551615",
            "\"hi\"",
        ] {
            let v = parse(src).unwrap();
            assert_eq!(v.to_string(), src);
        }
    }

    #[test]
    fn u64_counters_stay_exact() {
        let v = parse("18446744073709551615").unwrap();
        assert_eq!(v.as_u64(), Some(u64::MAX));
    }

    #[test]
    fn f64_round_trip_is_bit_exact() {
        for x in [0.1, 1.0 / 3.0, 2.5e-9, 123456.789, f64::MIN_POSITIVE] {
            let s = Json::Float(x).to_string();
            let back = parse(&s).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{s}");
        }
    }

    #[test]
    fn nested_structures_round_trip() {
        let src = r#"{"a":[1,2.5,"x"],"b":{"c":null,"d":true},"e":"q\"uo\\te"}"#;
        let v = parse(src).unwrap();
        let re = parse(&v.to_string()).unwrap();
        assert_eq!(v, re);
        assert_eq!(v.get("b").unwrap().get("d"), Some(&Json::Bool(true)));
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "line1\nline2\ttab \"quoted\" back\\slash \u{1}";
        let v = Json::Str(s.to_string());
        assert_eq!(parse(&v.to_string()).unwrap().as_str(), Some(s));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("nul").is_err());
    }
}
