//! Experiment scale: trades simulation fidelity for wall-clock time.

/// Experiment scale, scaled down from the paper's 50 M warm-up / 200 M
/// measurement windows so the full sweep fits on a laptop.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ExpScale {
    /// Smoke tests and `repro --quick`.
    Quick,
    /// The `repro` default.
    Full,
}

impl ExpScale {
    /// (warm-up, measurement) windows in instructions.
    pub fn window(self) -> (u64, u64) {
        match self {
            ExpScale::Quick => (10_000, 40_000),
            ExpScale::Full => (40_000, 160_000),
        }
    }

    /// Trace length generated to feed the window (replays fill the rest).
    pub fn trace_len(self) -> usize {
        let (w, m) = self.window();
        (w + m) as usize + 10_000
    }

    /// Multi-core per-core measurement window.
    pub fn multicore_window(self) -> (u64, u64) {
        match self {
            ExpScale::Quick => (5_000, 20_000),
            ExpScale::Full => (20_000, 60_000),
        }
    }

    /// Stable lowercase name used in job keys and manifests.
    pub fn name(self) -> &'static str {
        match self {
            ExpScale::Quick => "quick",
            ExpScale::Full => "full",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_covers_window() {
        for scale in [ExpScale::Quick, ExpScale::Full] {
            let (w, m) = scale.window();
            assert!(scale.trace_len() as u64 >= w + m);
            let (mw, mm) = scale.multicore_window();
            assert!(mw < w && mm < m, "multicore windows are smaller");
        }
    }

    #[test]
    fn names_are_distinct() {
        assert_ne!(ExpScale::Quick.name(), ExpScale::Full.name());
    }
}
