//! Parallel, resumable experiment orchestration for the secure-prefetch
//! reproduction.
//!
//! The paper's figures are built from hundreds of `(SystemConfig, trace,
//! scale)` simulations, many shared between figures. This crate turns
//! that into a deduplicated **job graph** keyed by a complete content
//! hash, executes it on a std-only **worker pool** (plain `std::thread`
//! — the build has no external dependencies), persists every result to
//! a JSON-lines **store** so interrupted sweeps resume where they
//! stopped, and records **observability**: a per-run manifest, per-job
//! wall-clock timings, and live progress/ETA lines.
//!
//! # Layers
//!
//! - [`job`] — [`JobSpec`]: one simulation; [`JobSpec::canonical`] /
//!   [`JobSpec::key`] define identity (the full config participates, so
//!   configs differing only in, say, L1D geometry never collide).
//! - [`scale`] — [`ExpScale`]: Quick/Full windows.
//! - [`pool`] — deterministic-order worker pool.
//! - [`store`] — [`ResultStore`]: append-only `results.jsonl`,
//!   torn-write tolerant.
//! - [`codec`] / [`json`] — hand-rolled, exact JSON (u64 counters stay
//!   integers; `f64` round-trips bit-identically).
//! - [`engine`] — [`Engine`]: dedupe → resume → pre-generate traces →
//!   execute → persist → manifest.
//! - [`obs`] — deterministic trace-artifact exporters (events JSONL,
//!   epochs CSV) for [`Engine::run_traced`] diagnostic runs.
//! - [`telemetry`] — deterministic histogram-artifact exporter
//!   (`<key>.hist.csv`) for [`Engine::run_telemetry`] runs, plus the
//!   structural validator for exported span-trace JSON.
//!
//! # Examples
//!
//! ```
//! use secpref_exp::{Engine, ExpScale, JobSpec};
//! use secpref_types::SystemConfig;
//!
//! let dir = std::env::temp_dir().join(format!("secpref-exp-doc-{}", std::process::id()));
//! let engine = Engine::new(&dir, 2).unwrap();
//! let jobs = vec![
//!     JobSpec::single(SystemConfig::baseline(1), "leela_like", ExpScale::Quick),
//!     JobSpec::single(SystemConfig::baseline(1), "leela_like", ExpScale::Quick),
//! ];
//! let (reports, summary) = engine.run_all_with_summary(&jobs);
//! assert_eq!(reports.len(), 2);
//! assert_eq!(summary.jobs_unique, 1); // duplicate deduplicated
//! std::fs::remove_dir_all(&dir).ok();
//! ```

#![warn(missing_docs)]

pub mod codec;
pub mod engine;
pub mod job;
pub mod json;
pub mod obs;
pub mod pool;
pub mod scale;
pub mod store;
pub mod telemetry;

pub use engine::{default_workers, Engine, JobRecord, ResultSource, RunSummary};
pub use job::{JobSpec, Workload};
pub use obs::write_trace_artifacts;
pub use pool::{ItemTiming, JobOutcome};
pub use scale::ExpScale;
pub use secpref_sim::{ObsCapture, ObsConfig, TelCapture, TelConfig};
pub use store::{ResultStore, StoredResult};
pub use telemetry::{hist_csv, validate_trace_json, write_tel_artifacts, TraceStats};
