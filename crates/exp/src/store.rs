//! JSON-lines result store: the on-disk cache that makes runs resumable.
//!
//! Layout (one directory per store, default `target/exp/`):
//!
//! ```text
//! <dir>/results.jsonl      one line per completed job
//! <dir>/manifest-<id>.json one per engine run (written by the engine)
//! <dir>/timings-<id>.csv   per-job wall-clock for the run
//! ```
//!
//! Each result line is a self-contained object:
//!
//! ```json
//! {"key":"<16-hex FNV>","canonical":"<full job content string>","report":{...}}
//! ```
//!
//! Appends are line-atomic in practice (single `write_all` + flush), and
//! the loader skips any malformed trailing line, so a run killed mid-write
//! loses at most the report being written — every earlier result is
//! reused on restart. The canonical string rides along so a hash
//! collision is detected (the engine compares it before trusting a hit)
//! instead of silently returning another job's report.

use crate::codec::{decode_report, encode_report};
use crate::json::{obj, parse, Json};
use secpref_sim::SimReport;
use std::collections::HashMap;
use std::fs::{self, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// A result loaded from disk: the canonical job string it was computed
/// for, plus the report itself.
#[derive(Clone, Debug)]
pub struct StoredResult {
    /// Full canonical content string of the producing job.
    pub canonical: String,
    /// The persisted report.
    pub report: SimReport,
}

/// Append-only JSONL store of completed simulation reports.
#[derive(Debug)]
pub struct ResultStore {
    dir: PathBuf,
    write_lock: Mutex<()>,
}

impl ResultStore {
    /// Opens (creating if needed) the store rooted at `dir`.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn open(dir: impl AsRef<Path>) -> io::Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        Ok(ResultStore {
            dir,
            write_lock: Mutex::new(()),
        })
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of the results file.
    pub fn results_path(&self) -> PathBuf {
        self.dir.join("results.jsonl")
    }

    /// Loads every well-formed result, keyed by job key. Later lines win
    /// (a job re-run after a schema change overwrites its predecessor).
    /// Malformed lines — e.g. a partial line from a killed run — are
    /// skipped, not fatal.
    pub fn load(&self) -> HashMap<String, StoredResult> {
        let mut out = HashMap::new();
        let Ok(text) = fs::read_to_string(self.results_path()) else {
            return out;
        };
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let Ok(json) = parse(line) else { continue };
            let (Some(key), Some(canonical), Some(report)) = (
                json.get("key").and_then(Json::as_str),
                json.get("canonical").and_then(Json::as_str),
                json.get("report"),
            ) else {
                continue;
            };
            let Ok(report) = decode_report(report) else {
                continue;
            };
            out.insert(
                key.to_string(),
                StoredResult {
                    canonical: canonical.to_string(),
                    report,
                },
            );
        }
        out
    }

    /// Appends one completed result.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; the store is unchanged on failure apart
    /// from a possibly-partial final line, which `load` tolerates.
    pub fn append(&self, key: &str, canonical: &str, report: &SimReport) -> io::Result<()> {
        let line = obj(vec![
            ("key", Json::Str(key.to_string())),
            ("canonical", Json::Str(canonical.to_string())),
            ("report", encode_report(report)),
        ])
        .to_string();
        let _guard = self.write_lock.lock().expect("store write lock");
        let mut f = OpenOptions::new()
            .create(true)
            .read(true)
            .append(true)
            .open(self.results_path())?;
        // Heal a torn final line left by a killed run: start this record
        // on a fresh line so it is not glued onto the fragment.
        let len = f.metadata()?.len();
        if len > 0 {
            let mut last = [0u8; 1];
            f.seek(SeekFrom::Start(len - 1))?;
            f.read_exact(&mut last)?;
            if last[0] != b'\n' {
                f.write_all(b"\n")?;
            }
        }
        f.write_all(line.as_bytes())?;
        f.write_all(b"\n")?;
        f.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use secpref_sim::{CoreMetrics, DramStats};

    fn tmp_dir(tag: &str) -> PathBuf {
        let d =
            std::env::temp_dir().join(format!("secpref-store-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    fn report(label: &str, instructions: u64) -> SimReport {
        SimReport {
            label: label.to_string(),
            cores: vec![CoreMetrics {
                instructions,
                cycles: instructions * 2,
                ..Default::default()
            }],
            dram: DramStats::default(),
            energy_nj: 1.5,
            sampling: None,
        }
    }

    #[test]
    fn append_then_load_round_trips() {
        let dir = tmp_dir("roundtrip");
        let store = ResultStore::open(&dir).unwrap();
        store.append("aaaa", "canon-a", &report("A", 10)).unwrap();
        store.append("bbbb", "canon-b", &report("B", 20)).unwrap();
        let loaded = store.load();
        assert_eq!(loaded.len(), 2);
        assert_eq!(loaded["aaaa"].canonical, "canon-a");
        assert_eq!(loaded["bbbb"].report.cores[0].instructions, 20);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn later_lines_win() {
        let dir = tmp_dir("dup");
        let store = ResultStore::open(&dir).unwrap();
        store.append("k", "c", &report("old", 1)).unwrap();
        store.append("k", "c", &report("new", 2)).unwrap();
        let loaded = store.load();
        assert_eq!(loaded.len(), 1);
        assert_eq!(loaded["k"].report.label, "new");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn partial_trailing_line_is_skipped() {
        let dir = tmp_dir("partial");
        let store = ResultStore::open(&dir).unwrap();
        store.append("good", "c", &report("ok", 5)).unwrap();
        // Simulate a run killed mid-append.
        let mut f = OpenOptions::new()
            .append(true)
            .open(store.results_path())
            .unwrap();
        f.write_all(b"{\"key\":\"trunc\",\"canonical\":\"x\",\"repo")
            .unwrap();
        drop(f);
        let loaded = store.load();
        assert_eq!(loaded.len(), 1);
        assert!(loaded.contains_key("good"));
        // And the store keeps working after the torn write.
        store.append("more", "c", &report("more", 6)).unwrap();
        assert_eq!(store.load().len(), 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_file_loads_empty() {
        let dir = tmp_dir("empty");
        let store = ResultStore::open(&dir).unwrap();
        assert!(store.load().is_empty());
        let _ = fs::remove_dir_all(&dir);
    }
}
