//! Job specifications and content-addressed job keys.
//!
//! A [`JobSpec`] is one simulation the engine may have to run: a full
//! [`SystemConfig`], a workload (one trace or a 4-trace mix), and the
//! [`ExpScale`] that fixes the warm-up/measurement windows. Jobs are keyed
//! by a hash of a **canonical string** that covers every knob that can
//! change the result — including the complete cache geometry, which the
//! old `bench::runner::cfg_key` silently dropped. The canonical string is
//! persisted next to each stored result so a (vanishingly unlikely) hash
//! collision is detected instead of silently returning the wrong report.

use crate::scale::ExpScale;
use secpref_sim::{
    run_multi_sampled_with_window, run_multi_with_window, run_multi_with_window_obs,
    run_multi_with_window_tel, run_single_sampled_with_window, run_single_with_window,
    run_single_with_window_obs, run_single_with_window_tel, run_stream_sampled_with_window,
    run_stream_with_window, ObsCapture, ObsConfig, SimReport, TelCapture, TelConfig,
};
use secpref_trace::suite;
use secpref_types::{SamplingConfig, SystemConfig};
use std::path::PathBuf;

/// What a job simulates: one trace on one core, a multi-core mix, or a
/// streamed on-disk chunk store.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Workload {
    /// Single-core run of one named suite trace.
    Single(String),
    /// Multiprogrammed mix of named suite traces, one per core (the
    /// length sets the core count; 1–64 in practice). The canonical
    /// string is identical to the historic fixed-width-4 form for
    /// 4-entry mixes, so existing store keys are preserved.
    Mix(Vec<String>),
    /// Single-core bounded-memory replay of a captured `.sct` chunk
    /// store. Keyed by the store's chunking-independent content digest,
    /// *not* by `path` — the same capture moved elsewhere on disk
    /// deduplicates to the same job.
    Stream {
        /// Trace name recorded in the store footer.
        name: String,
        /// Whole-trace content digest from the store footer.
        digest: u64,
        /// Where the store lives (execution only; excluded from the key).
        path: PathBuf,
    },
}

impl Workload {
    /// Suite trace names this workload needs pre-generated, in order
    /// (empty for streams — their instructions come off disk).
    pub fn trace_names(&self) -> Vec<&str> {
        match self {
            Workload::Single(n) => vec![n.as_str()],
            Workload::Mix(ns) => ns.iter().map(String::as_str).collect(),
            Workload::Stream { .. } => Vec::new(),
        }
    }

    /// Short human-readable form for progress lines.
    pub fn describe(&self) -> String {
        match self {
            Workload::Single(n) => n.clone(),
            Workload::Mix(ns) => format!("mix[{}]", ns.join("+")),
            Workload::Stream { name, .. } => format!("stream[{name}]"),
        }
    }
}

/// One deduplicatable unit of simulation work.
#[derive(Clone, Debug, PartialEq)]
pub struct JobSpec {
    /// Full system configuration (every field participates in the key).
    pub cfg: SystemConfig,
    /// Workload to run under `cfg`.
    pub workload: Workload,
    /// Windows/trace length.
    pub scale: ExpScale,
    /// SMARTS-style sampling plan; `None` runs full detail. Part of the
    /// canonical string (appended only when set, so full-detail keys are
    /// unchanged), so sampled and full results never alias in the store.
    pub sampling: Option<SamplingConfig>,
}

impl JobSpec {
    /// Single-core job.
    pub fn single(cfg: SystemConfig, trace: &str, scale: ExpScale) -> Self {
        JobSpec {
            cfg,
            workload: Workload::Single(trace.to_string()),
            scale,
            sampling: None,
        }
    }

    /// Multi-core mix job: one core per entry.
    ///
    /// # Panics
    ///
    /// Panics on an empty mix.
    pub fn mix(cfg: SystemConfig, mix: &[String], scale: ExpScale) -> Self {
        assert!(!mix.is_empty(), "a mix needs at least one trace");
        JobSpec {
            cfg,
            workload: Workload::Mix(mix.to_vec()),
            scale,
            sampling: None,
        }
    }

    /// Single-core streamed job over a captured chunk store at `path`.
    /// Reads the store footer for the trace name and content digest that
    /// key the job.
    ///
    /// # Errors
    ///
    /// Propagates open/validation errors from the chunk-store reader.
    pub fn stream(cfg: SystemConfig, path: PathBuf, scale: ExpScale) -> std::io::Result<Self> {
        let file = std::io::BufReader::new(std::fs::File::open(&path)?);
        let reader = secpref_tracestore::TraceReader::open(file)?;
        let meta = reader.meta();
        Ok(JobSpec {
            cfg,
            workload: Workload::Stream {
                name: meta.name.clone(),
                digest: meta.content_digest,
                path,
            },
            scale,
            sampling: None,
        })
    }

    /// Switches the job to SMARTS-style sampled execution. Only
    /// [`JobSpec::run`] honors the plan; traced and telemetry runs are
    /// debugging paths and always execute full detail.
    pub fn with_sampling(mut self, s: SamplingConfig) -> Self {
        self.sampling = Some(s);
        self
    }

    /// The effective (warm-up, measurement) window for this job.
    pub fn window(&self) -> (u64, u64) {
        match self.workload {
            Workload::Single(_) | Workload::Stream { .. } => self.scale.window(),
            Workload::Mix(_) => self.scale.multicore_window(),
        }
    }

    /// Canonical content string: covers the *entire* `SystemConfig` (the
    /// derived `Debug` representation is exhaustive by construction — a
    /// new config field changes the string, and therefore the key,
    /// automatically), the workload trace names, the resolved windows,
    /// and the generated trace length.
    pub fn canonical(&self) -> String {
        let (warmup, measure) = self.window();
        let workload = match &self.workload {
            Workload::Single(n) => format!("single:{n}"),
            Workload::Mix(ns) => format!("mix:{}", ns.join(",")),
            // Content-addressed: the digest covers every instruction and
            // wrong-path annotation; the on-disk location is irrelevant.
            Workload::Stream { name, digest, .. } => format!("stream:{name}:{digest:016x}"),
        };
        let mut c = format!(
            "v1|cfg={:?}|workload={workload}|scale={}|warmup={warmup}|measure={measure}|trace_len={}",
            self.cfg,
            self.scale.name(),
            self.scale.trace_len(),
        );
        // Appended only when sampling is on: every pre-existing
        // full-detail canonical string (and store key) stays intact.
        if let Some(s) = &self.sampling {
            c.push_str(&format!("|sampling={}", s.canonical()));
        }
        c
    }

    /// Content-addressed job key: FNV-1a 64 of [`JobSpec::canonical`],
    /// as 16 hex digits.
    pub fn key(&self) -> String {
        format!("{:016x}", fnv1a64(self.canonical().as_bytes()))
    }

    /// Short label for progress lines and timing exports.
    pub fn label(&self) -> String {
        format!(
            "{}/{}/{}{}{} @ {} ({})",
            self.cfg.prefetcher,
            self.cfg.prefetch_mode,
            if self.cfg.secure.is_secure() {
                "GhostMinion"
            } else {
                "non-secure"
            },
            if self.cfg.suf { "+SUF" } else { "" },
            if self.cfg.timely_secure { "+TS" } else { "" },
            self.workload.describe(),
            match self.sampling {
                Some(_) => format!("{}, sampled", self.scale.name()),
                None => self.scale.name().to_string(),
            },
        )
    }

    /// Executes the job (synchronously, on the calling thread).
    ///
    /// Traces come from `secpref_trace::suite::cached_trace`, so repeated
    /// jobs over the same trace share one generated copy per process.
    pub fn run(&self) -> SimReport {
        let (warmup, measure) = self.window();
        match (&self.workload, self.sampling.as_ref()) {
            (Workload::Single(name), None) => {
                let trace = suite::cached_trace(name, self.scale.trace_len());
                run_single_with_window(&self.cfg, &trace, warmup, measure)
            }
            (Workload::Single(name), Some(s)) => {
                let trace = suite::cached_trace(name, self.scale.trace_len());
                run_single_sampled_with_window(&self.cfg, &trace, warmup, measure, s)
            }
            (Workload::Mix(names), sampling) => {
                let traces: Vec<_> = names
                    .iter()
                    .map(|n| suite::cached_trace(n, self.scale.trace_len()))
                    .collect();
                match sampling {
                    None => run_multi_with_window(&self.cfg, traces, warmup, measure),
                    Some(s) => run_multi_sampled_with_window(&self.cfg, traces, warmup, measure, s),
                }
            }
            (Workload::Stream { path, .. }, sampling) => {
                // The store was validated when the spec was built; a
                // failure here means it vanished or was corrupted since.
                match sampling {
                    None => run_stream_with_window(&self.cfg, path, warmup, measure),
                    Some(s) => run_stream_sampled_with_window(&self.cfg, path, warmup, measure, s),
                }
                .unwrap_or_else(|e| panic!("chunk store {}: {e}", path.display()))
            }
        }
    }

    /// Executes the job with an observability recorder attached.
    ///
    /// The observability configuration is deliberately *not* part of the
    /// job key — it cannot change the simulation outcome, and traced runs
    /// bypass the result store entirely (see `Engine::run_traced`).
    pub fn run_traced(&self, obs: &ObsConfig) -> (SimReport, Option<ObsCapture>) {
        let (warmup, measure) = self.window();
        match &self.workload {
            Workload::Single(name) => {
                let trace = suite::cached_trace(name, self.scale.trace_len());
                run_single_with_window_obs(&self.cfg, &trace, warmup, measure, obs)
            }
            Workload::Mix(names) => {
                let traces = names
                    .iter()
                    .map(|n| suite::cached_trace(n, self.scale.trace_len()))
                    .collect();
                run_multi_with_window_obs(&self.cfg, traces, warmup, measure, obs)
            }
            Workload::Stream { path, .. } => {
                let mut cfg = self.cfg.clone();
                cfg.cores = 1;
                cfg.llc = secpref_types::CacheConfig::baseline_llc(1);
                let feed = secpref_sim::StreamFeed::open_for_core(path, cfg.core.rob_entries)
                    .unwrap_or_else(|e| panic!("chunk store {}: {e}", path.display()));
                let mut sys = secpref_sim::System::from_feeds(
                    cfg,
                    vec![secpref_sim::TraceFeed::Stream(Box::new(feed))],
                )
                .with_window(warmup, measure)
                .with_obs(obs);
                sys.run();
                let capture = sys.take_obs();
                (sys.report(), capture)
            }
        }
    }
}

impl JobSpec {
    /// Executes the job with a telemetry recorder attached.
    ///
    /// Like [`JobSpec::run_traced`], the telemetry configuration is *not*
    /// part of the job key — telemetry cannot change the simulation
    /// outcome (it records at existing event sites), and telemetry runs
    /// bypass the result store (see `Engine::run_telemetry`).
    pub fn run_telemetry(&self, tel: &TelConfig) -> (SimReport, Option<TelCapture>) {
        let (warmup, measure) = self.window();
        match &self.workload {
            Workload::Single(name) => {
                let trace = suite::cached_trace(name, self.scale.trace_len());
                run_single_with_window_tel(&self.cfg, &trace, warmup, measure, tel)
            }
            Workload::Mix(names) => {
                let traces = names
                    .iter()
                    .map(|n| suite::cached_trace(n, self.scale.trace_len()))
                    .collect();
                run_multi_with_window_tel(&self.cfg, traces, warmup, measure, tel)
            }
            Workload::Stream { path, .. } => {
                let mut cfg = self.cfg.clone();
                cfg.cores = 1;
                cfg.llc = secpref_types::CacheConfig::baseline_llc(1);
                let feed = secpref_sim::StreamFeed::open_for_core(path, cfg.core.rob_entries)
                    .unwrap_or_else(|e| panic!("chunk store {}: {e}", path.display()));
                let mut sys = secpref_sim::System::from_feeds(
                    cfg,
                    vec![secpref_sim::TraceFeed::Stream(Box::new(feed))],
                )
                .with_window(warmup, measure)
                .with_telemetry(tel);
                sys.run();
                let capture = sys.take_telemetry();
                (sys.report(), capture)
            }
        }
    }
}

/// FNV-1a, 64-bit.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use secpref_types::{PrefetchMode, PrefetcherKind, SecureMode};

    fn base_job() -> JobSpec {
        JobSpec::single(SystemConfig::baseline(1), "mcf_like_a", ExpScale::Quick)
    }

    #[test]
    fn key_is_stable_and_hex() {
        let j = base_job();
        assert_eq!(j.key(), j.key());
        assert_eq!(j.key().len(), 16);
        assert!(j.key().chars().all(|c| c.is_ascii_hexdigit()));
    }

    #[test]
    fn key_covers_cache_geometry() {
        // The historic cfg_key only looked at prefetcher/mode/secure/
        // suf/ts/cores — two configs differing in L1D or LLC geometry
        // collided. The content key must distinguish them.
        let a = base_job();
        let mut b = a.clone();
        b.cfg.l1d.ways *= 2;
        let mut c = a.clone();
        c.cfg.llc.size_bytes *= 2;
        let mut d = a.clone();
        d.cfg.l1d.mshrs += 1;
        assert_ne!(a.key(), b.key());
        assert_ne!(a.key(), c.key());
        assert_ne!(a.key(), d.key());
        assert_ne!(b.key(), c.key());
    }

    #[test]
    fn key_covers_mode_knobs() {
        let a = base_job();
        let mut b = a.clone();
        b.cfg = b
            .cfg
            .with_secure(SecureMode::GhostMinion)
            .with_prefetcher(PrefetcherKind::Berti)
            .with_mode(PrefetchMode::OnCommit);
        let mut c = b.clone();
        c.cfg = c.cfg.with_suf(true);
        assert_ne!(a.key(), b.key());
        assert_ne!(b.key(), c.key());
    }

    #[test]
    fn key_covers_workload_and_scale() {
        let a = base_job();
        let mut b = a.clone();
        b.workload = Workload::Single("gcc_like".into());
        let mut c = a.clone();
        c.scale = ExpScale::Full;
        let names = [
            "mcf_like_a".to_string(),
            "gcc_like".to_string(),
            "lbm_like".to_string(),
            "leela_like".to_string(),
        ];
        let d = JobSpec::mix(a.cfg.clone(), &names, ExpScale::Quick);
        let keys = [a.key(), b.key(), c.key(), d.key()];
        for i in 0..keys.len() {
            for j in i + 1..keys.len() {
                assert_ne!(keys[i], keys[j]);
            }
        }
    }

    #[test]
    fn mix_order_matters() {
        let mk = |names: [&str; 4]| {
            JobSpec::mix(
                SystemConfig::baseline(4),
                &names.map(String::from),
                ExpScale::Quick,
            )
        };
        let a = mk(["a", "b", "c", "d"]);
        let b = mk(["d", "c", "b", "a"]);
        assert_ne!(a.key(), b.key());
    }

    #[test]
    fn stream_key_is_content_addressed_not_path_addressed() {
        let mk = |digest: u64, path: &str| JobSpec {
            cfg: SystemConfig::baseline(1),
            workload: Workload::Stream {
                name: "mcf_like_a".into(),
                digest,
                path: PathBuf::from(path),
            },
            scale: ExpScale::Quick,
            sampling: None,
        };
        let a = mk(0xDEAD_BEEF, "/tmp/a.sct");
        let b = mk(0xDEAD_BEEF, "/elsewhere/moved.sct");
        let c = mk(0xFEED_FACE, "/tmp/a.sct");
        assert_eq!(a.key(), b.key(), "moving a capture must not change its key");
        assert_ne!(a.key(), c.key(), "different content must change the key");
        assert_ne!(a.key(), base_job().key());
        assert!(
            a.workload.trace_names().is_empty(),
            "streams skip pregenerate"
        );
    }

    #[test]
    fn key_covers_sampling_plan() {
        let full = base_job();
        assert!(
            !full.canonical().contains("sampling="),
            "full-detail canonical strings (and store keys) must be
             byte-identical to the pre-sampling format"
        );
        let s = SamplingConfig::new(2_000, 500, 1_500).with_jitter(300, 11);
        let sampled = base_job().with_sampling(s);
        assert_ne!(full.key(), sampled.key());
        assert!(sampled
            .canonical()
            .contains("|sampling=w2000+u500/g1500~j300s11"));
        assert!(sampled.label().contains("sampled"));
        // Any plan knob changes the key.
        let other = base_job().with_sampling(s.with_jitter(300, 12));
        assert_ne!(sampled.key(), other.key());
    }

    #[test]
    fn fnv_reference_values() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }
}
