//! A std-only worker pool for simulation jobs.
//!
//! Workers are scoped `std::thread`s pulling job indices from a shared
//! atomic cursor and reporting `(index, report, wall)` over an mpsc
//! channel. The pool's *result order is the job order* regardless of
//! worker count or completion interleaving — callers receive a `Vec`
//! indexed like the input slice, which is what makes N-worker sweeps
//! bit-identical to single-threaded ones.

use crate::job::JobSpec;
use secpref_sim::SimReport;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// Wall-clock placement of one completed item: which worker ran it and
/// when it ran relative to the pool launch. This is what the engine's
/// span exporter turns into one Chrome trace-event track per worker.
#[derive(Clone, Copy, Debug)]
pub struct ItemTiming {
    /// Index of the worker thread that ran the item (`0..workers`).
    pub worker: usize,
    /// Offset of the item's start from the pool launch.
    pub start: Duration,
    /// How long the item ran.
    pub wall: Duration,
}

/// One completed job: the report plus how long the simulation took on
/// its worker thread.
#[derive(Clone, Debug)]
pub struct JobOutcome {
    /// The simulation result.
    pub report: SimReport,
    /// Wall-clock the job spent executing.
    pub wall: Duration,
}

/// Runs every job in `jobs` across `workers` threads.
///
/// `on_done` fires on the *calling* thread once per completed job, in
/// completion order (use it for progress lines and store appends — no
/// synchronization needed). The returned vector is in job order.
///
/// # Panics
///
/// Propagates a panic from any job once all workers have drained.
pub fn run_jobs(
    jobs: &[JobSpec],
    workers: usize,
    mut on_done: impl FnMut(usize, &JobSpec, &SimReport, Duration),
) -> Vec<JobOutcome> {
    run_jobs_with(
        jobs,
        workers,
        |job| job.run(),
        |idx, job, report, wall| on_done(idx, job, report, wall),
    )
    .into_iter()
    .map(|(report, wall)| JobOutcome { report, wall })
    .collect()
}

/// Generic form of [`run_jobs`]: `run` produces any `Send` result per
/// job (e.g. a report *plus* an observability capture). Result order is
/// still the job order; `on_done` still fires on the calling thread —
/// which keeps artifact writes single-threaded without extra locks.
///
/// # Panics
///
/// Propagates a panic from any job once all workers have drained.
pub fn run_jobs_with<R: Send>(
    jobs: &[JobSpec],
    workers: usize,
    run: impl Fn(&JobSpec) -> R + Sync,
    on_done: impl FnMut(usize, &JobSpec, &R, Duration),
) -> Vec<(R, Duration)> {
    run_items_with(jobs, workers, run, on_done)
}

/// Fully generic pool: runs `run` over arbitrary `Sync` work items — not
/// just [`JobSpec`]s — with the same ordering and callback guarantees as
/// [`run_jobs`]. `secpref-check` uses this to fan fuzzing cells out
/// across workers while keeping per-cell determinism.
///
/// # Panics
///
/// Propagates a panic from any item once all workers have drained.
pub fn run_items_with<T: Sync, R: Send>(
    items: &[T],
    workers: usize,
    run: impl Fn(&T) -> R + Sync,
    mut on_done: impl FnMut(usize, &T, &R, Duration),
) -> Vec<(R, Duration)> {
    run_items_timed(items, workers, run, |idx, item, result, t| {
        on_done(idx, item, result, t.wall)
    })
}

/// Like [`run_items_with`], but `on_done` additionally learns *where*
/// each item ran ([`ItemTiming`]: worker index plus start offset), which
/// is what the engine's span tracer needs to lay jobs out on per-worker
/// tracks.
///
/// # Panics
///
/// Propagates a panic from any item once all workers have drained.
pub fn run_items_timed<T: Sync, R: Send>(
    items: &[T],
    workers: usize,
    run: impl Fn(&T) -> R + Sync,
    mut on_done: impl FnMut(usize, &T, &R, ItemTiming),
) -> Vec<(R, Duration)> {
    if items.is_empty() {
        return Vec::new();
    }
    let workers = workers.clamp(1, items.len());
    let cursor = AtomicUsize::new(0);
    let launch = Instant::now();
    let (tx, rx) = mpsc::channel::<(usize, R, ItemTiming)>();

    let mut slots: Vec<Option<(R, Duration)>> = Vec::new();
    slots.resize_with(items.len(), || None);
    std::thread::scope(|scope| {
        let run = &run;
        for worker in 0..workers {
            let tx = tx.clone();
            let cursor = &cursor;
            scope.spawn(move || loop {
                let idx = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(idx) else { break };
                let start = Instant::now();
                let result = run(item);
                let timing = ItemTiming {
                    worker,
                    start: start.duration_since(launch),
                    wall: start.elapsed(),
                };
                if tx.send((idx, result, timing)).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        // `rx` closes when every worker exits; if one panicked mid-item we
        // fall out of the loop early and `scope` re-raises the panic.
        for (idx, result, timing) in rx {
            on_done(idx, &items[idx], &result, timing);
            slots[idx] = Some((result, timing.wall));
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every item completes exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scale::ExpScale;
    use secpref_types::SystemConfig;

    fn jobs(names: &[&str]) -> Vec<JobSpec> {
        names
            .iter()
            .map(|n| JobSpec::single(SystemConfig::baseline(1), n, ExpScale::Quick))
            .collect()
    }

    #[test]
    fn results_are_in_job_order_for_any_worker_count() {
        let js = jobs(&["leela_like", "gcc_like", "leela_like"]);
        let one = run_jobs(&js, 1, |_, _, _, _| {});
        let four = run_jobs(&js, 4, |_, _, _, _| {});
        assert_eq!(one.len(), 3);
        for (a, b) in one.iter().zip(&four) {
            assert_eq!(a.report.label, b.report.label);
            assert_eq!(
                a.report.cores[0].instructions,
                b.report.cores[0].instructions
            );
            assert_eq!(a.report.cores[0].cycles, b.report.cores[0].cycles);
        }
    }

    #[test]
    fn callback_sees_every_job_once() {
        let js = jobs(&["leela_like", "gcc_like"]);
        let mut seen = Vec::new();
        run_jobs(&js, 2, |idx, job, report, _| {
            seen.push((idx, job.workload.describe(), report.ipc()));
        });
        seen.sort_by_key(|(idx, _, _)| *idx);
        assert_eq!(seen.len(), 2);
        assert_eq!(seen[0].1, "leela_like");
        assert_eq!(seen[1].1, "gcc_like");
        assert!(seen.iter().all(|(_, _, ipc)| *ipc > 0.0));
    }

    #[test]
    fn generic_items_pool_preserves_order() {
        let items: Vec<u64> = (0..17).collect();
        let out = run_items_with(&items, 4, |&x| x * x, |_, _, _, _| {});
        assert_eq!(out.len(), 17);
        for (i, (r, _)) in out.iter().enumerate() {
            assert_eq!(*r, (i as u64) * (i as u64));
        }
    }

    #[test]
    fn empty_job_list_is_fine() {
        assert!(run_jobs(&[], 8, |_, _, _, _| {}).is_empty());
    }

    #[test]
    fn oversized_worker_count_is_clamped() {
        let js = jobs(&["leela_like"]);
        assert_eq!(run_jobs(&js, 64, |_, _, _, _| {}).len(), 1);
    }
}
