//! JSON encoding/decoding of [`SimReport`] for the result store.
//!
//! Encoders destructure every struct exhaustively and decoders build the
//! structs with full literals, so adding a metrics field is a compile
//! error here rather than a silent data loss. Counters stay `u64` end to
//! end; the single `f64` (`energy_nj`) round-trips bit-exactly through
//! the shortest-representation formatter in [`crate::json`].

use crate::json::{obj, parse, Json};
use secpref_sim::{
    CommitMetrics, CoreMetrics, DramStats, LevelMetrics, MetricStats, MissClassCounts,
    PrefetchMetrics, SamplingSummary, SimReport,
};

/// Encodes a report as a compact JSON object. The `sampling` block is
/// emitted only for sampled runs, so full-detail reports keep their
/// exact historical byte encoding (and pinned digests).
pub fn encode_report(report: &SimReport) -> Json {
    let SimReport {
        label,
        cores,
        dram,
        energy_nj,
        sampling,
    } = report;
    let mut fields = vec![
        ("label", Json::Str(label.clone())),
        ("energy_nj", Json::Float(*energy_nj)),
        ("dram", encode_dram(dram)),
        ("cores", Json::Arr(cores.iter().map(encode_core).collect())),
    ];
    if let Some(s) = sampling {
        fields.push(("sampling", encode_sampling(s)));
    }
    obj(fields)
}

/// Decodes a report produced by [`encode_report`].
///
/// # Errors
///
/// Returns a description of the first missing or mistyped field.
pub fn decode_report(json: &Json) -> Result<SimReport, String> {
    Ok(SimReport {
        label: str_field(json, "label")?,
        energy_nj: f64_field(json, "energy_nj")?,
        dram: decode_dram(field(json, "dram")?)?,
        cores: field(json, "cores")?
            .as_arr()
            .ok_or("cores: not an array")?
            .iter()
            .map(decode_core)
            .collect::<Result<_, _>>()?,
        sampling: match json.get("sampling") {
            Some(s) => Some(decode_sampling(s)?),
            None => None,
        },
    })
}

/// Serializes a report to a JSON string.
pub fn report_to_string(report: &SimReport) -> String {
    encode_report(report).to_string()
}

/// Parses a report from a JSON string.
///
/// # Errors
///
/// Propagates JSON syntax errors and [`decode_report`] field errors.
pub fn report_from_str(s: &str) -> Result<SimReport, String> {
    decode_report(&parse(s)?)
}

fn encode_dram(d: &DramStats) -> Json {
    let DramStats {
        reads,
        writes,
        row_hits,
        row_misses,
        wq_forwards,
    } = d;
    obj(vec![
        ("reads", Json::UInt(*reads)),
        ("writes", Json::UInt(*writes)),
        ("row_hits", Json::UInt(*row_hits)),
        ("row_misses", Json::UInt(*row_misses)),
        ("wq_forwards", Json::UInt(*wq_forwards)),
    ])
}

fn decode_dram(json: &Json) -> Result<DramStats, String> {
    Ok(DramStats {
        reads: u64_field(json, "reads")?,
        writes: u64_field(json, "writes")?,
        row_hits: u64_field(json, "row_hits")?,
        row_misses: u64_field(json, "row_misses")?,
        wq_forwards: u64_field(json, "wq_forwards")?,
    })
}

fn encode_core(c: &CoreMetrics) -> Json {
    let CoreMetrics {
        instructions,
        cycles,
        l1d,
        l2,
        llc,
        dram_accesses,
        gm_accesses,
        prefetch,
        commit,
        class,
        wrong_path_loads,
    } = c;
    obj(vec![
        ("instructions", Json::UInt(*instructions)),
        ("cycles", Json::UInt(*cycles)),
        ("l1d", encode_level(l1d)),
        ("l2", encode_level(l2)),
        ("llc", encode_level(llc)),
        ("dram_accesses", Json::UInt(*dram_accesses)),
        ("gm_accesses", Json::UInt(*gm_accesses)),
        ("prefetch", encode_prefetch(prefetch)),
        ("commit", encode_commit(commit)),
        ("class", encode_class(class)),
        ("wrong_path_loads", Json::UInt(*wrong_path_loads)),
    ])
}

fn decode_core(json: &Json) -> Result<CoreMetrics, String> {
    Ok(CoreMetrics {
        instructions: u64_field(json, "instructions")?,
        cycles: u64_field(json, "cycles")?,
        l1d: decode_level(field(json, "l1d")?)?,
        l2: decode_level(field(json, "l2")?)?,
        llc: decode_level(field(json, "llc")?)?,
        dram_accesses: u64_field(json, "dram_accesses")?,
        gm_accesses: u64_field(json, "gm_accesses")?,
        prefetch: decode_prefetch(field(json, "prefetch")?)?,
        commit: decode_commit(field(json, "commit")?)?,
        class: decode_class(field(json, "class")?)?,
        wrong_path_loads: u64_field(json, "wrong_path_loads")?,
    })
}

fn encode_level(l: &LevelMetrics) -> Json {
    let LevelMetrics {
        demand_accesses,
        demand_misses,
        prefetch_accesses,
        commit_accesses,
        writeback_accesses,
        mshr_occupancy_integral,
        mshr_full_cycles,
        mshr_full_stalls,
        port_stalls,
        miss_latency_sum,
        miss_latency_count,
    } = l;
    obj(vec![
        ("demand_accesses", Json::UInt(*demand_accesses)),
        ("demand_misses", Json::UInt(*demand_misses)),
        ("prefetch_accesses", Json::UInt(*prefetch_accesses)),
        ("commit_accesses", Json::UInt(*commit_accesses)),
        ("writeback_accesses", Json::UInt(*writeback_accesses)),
        (
            "mshr_occupancy_integral",
            Json::UInt(*mshr_occupancy_integral),
        ),
        ("mshr_full_cycles", Json::UInt(*mshr_full_cycles)),
        ("mshr_full_stalls", Json::UInt(*mshr_full_stalls)),
        ("port_stalls", Json::UInt(*port_stalls)),
        ("miss_latency_sum", Json::UInt(*miss_latency_sum)),
        ("miss_latency_count", Json::UInt(*miss_latency_count)),
    ])
}

fn decode_level(json: &Json) -> Result<LevelMetrics, String> {
    Ok(LevelMetrics {
        demand_accesses: u64_field(json, "demand_accesses")?,
        demand_misses: u64_field(json, "demand_misses")?,
        prefetch_accesses: u64_field(json, "prefetch_accesses")?,
        commit_accesses: u64_field(json, "commit_accesses")?,
        writeback_accesses: u64_field(json, "writeback_accesses")?,
        mshr_occupancy_integral: u64_field(json, "mshr_occupancy_integral")?,
        mshr_full_cycles: u64_field(json, "mshr_full_cycles")?,
        mshr_full_stalls: u64_field(json, "mshr_full_stalls")?,
        port_stalls: u64_field(json, "port_stalls")?,
        miss_latency_sum: u64_field(json, "miss_latency_sum")?,
        miss_latency_count: u64_field(json, "miss_latency_count")?,
    })
}

fn encode_prefetch(p: &PrefetchMetrics) -> Json {
    let PrefetchMetrics {
        proposed,
        issued,
        dropped_duplicate,
        dropped_resources,
        useful,
        late,
        useless,
    } = p;
    obj(vec![
        ("proposed", Json::UInt(*proposed)),
        ("issued", Json::UInt(*issued)),
        ("dropped_duplicate", Json::UInt(*dropped_duplicate)),
        ("dropped_resources", Json::UInt(*dropped_resources)),
        ("useful", Json::UInt(*useful)),
        ("late", Json::UInt(*late)),
        ("useless", Json::UInt(*useless)),
    ])
}

fn decode_prefetch(json: &Json) -> Result<PrefetchMetrics, String> {
    Ok(PrefetchMetrics {
        proposed: u64_field(json, "proposed")?,
        issued: u64_field(json, "issued")?,
        dropped_duplicate: u64_field(json, "dropped_duplicate")?,
        dropped_resources: u64_field(json, "dropped_resources")?,
        useful: u64_field(json, "useful")?,
        late: u64_field(json, "late")?,
        useless: u64_field(json, "useless")?,
    })
}

fn encode_commit(c: &CommitMetrics) -> Json {
    let CommitMetrics {
        commit_writes,
        refetches,
        suf_dropped,
        suf_drop_correct,
        suf_drop_wrong,
        propagation_skipped,
        propagation_skip_correct,
        propagation_skip_wrong,
        propagations,
    } = c;
    obj(vec![
        ("commit_writes", Json::UInt(*commit_writes)),
        ("refetches", Json::UInt(*refetches)),
        ("suf_dropped", Json::UInt(*suf_dropped)),
        ("suf_drop_correct", Json::UInt(*suf_drop_correct)),
        ("suf_drop_wrong", Json::UInt(*suf_drop_wrong)),
        ("propagation_skipped", Json::UInt(*propagation_skipped)),
        (
            "propagation_skip_correct",
            Json::UInt(*propagation_skip_correct),
        ),
        (
            "propagation_skip_wrong",
            Json::UInt(*propagation_skip_wrong),
        ),
        ("propagations", Json::UInt(*propagations)),
    ])
}

fn decode_commit(json: &Json) -> Result<CommitMetrics, String> {
    Ok(CommitMetrics {
        commit_writes: u64_field(json, "commit_writes")?,
        refetches: u64_field(json, "refetches")?,
        suf_dropped: u64_field(json, "suf_dropped")?,
        suf_drop_correct: u64_field(json, "suf_drop_correct")?,
        suf_drop_wrong: u64_field(json, "suf_drop_wrong")?,
        propagation_skipped: u64_field(json, "propagation_skipped")?,
        propagation_skip_correct: u64_field(json, "propagation_skip_correct")?,
        propagation_skip_wrong: u64_field(json, "propagation_skip_wrong")?,
        propagations: u64_field(json, "propagations")?,
    })
}

fn encode_class(c: &MissClassCounts) -> Json {
    let MissClassCounts {
        late,
        commit_late,
        missed_opportunity,
        uncovered,
    } = c;
    obj(vec![
        ("late", Json::UInt(*late)),
        ("commit_late", Json::UInt(*commit_late)),
        ("missed_opportunity", Json::UInt(*missed_opportunity)),
        ("uncovered", Json::UInt(*uncovered)),
    ])
}

fn decode_class(json: &Json) -> Result<MissClassCounts, String> {
    Ok(MissClassCounts {
        late: u64_field(json, "late")?,
        commit_late: u64_field(json, "commit_late")?,
        missed_opportunity: u64_field(json, "missed_opportunity")?,
        uncovered: u64_field(json, "uncovered")?,
    })
}

fn encode_sampling(s: &SamplingSummary) -> Json {
    let SamplingSummary {
        windows,
        window_len,
        measured_instructions,
        functional_instructions,
        ipc,
        mpki_l1d,
        pf_accuracy,
    } = s;
    obj(vec![
        ("windows", Json::UInt(*windows)),
        ("window_len", Json::UInt(*window_len)),
        ("measured_instructions", Json::UInt(*measured_instructions)),
        (
            "functional_instructions",
            Json::UInt(*functional_instructions),
        ),
        ("ipc", encode_stats(ipc)),
        ("mpki_l1d", encode_stats(mpki_l1d)),
        ("pf_accuracy", encode_stats(pf_accuracy)),
    ])
}

fn decode_sampling(json: &Json) -> Result<SamplingSummary, String> {
    Ok(SamplingSummary {
        windows: u64_field(json, "windows")?,
        window_len: u64_field(json, "window_len")?,
        measured_instructions: u64_field(json, "measured_instructions")?,
        functional_instructions: u64_field(json, "functional_instructions")?,
        ipc: decode_stats(field(json, "ipc")?)?,
        mpki_l1d: decode_stats(field(json, "mpki_l1d")?)?,
        pf_accuracy: decode_stats(field(json, "pf_accuracy")?)?,
    })
}

fn encode_stats(s: &MetricStats) -> Json {
    let MetricStats {
        mean,
        stderr,
        ci_half,
        n,
    } = s;
    obj(vec![
        ("mean", Json::Float(*mean)),
        ("stderr", Json::Float(*stderr)),
        ("ci_half", Json::Float(*ci_half)),
        ("n", Json::UInt(*n)),
    ])
}

fn decode_stats(json: &Json) -> Result<MetricStats, String> {
    Ok(MetricStats {
        mean: f64_field(json, "mean")?,
        stderr: f64_field(json, "stderr")?,
        ci_half: f64_field(json, "ci_half")?,
        n: u64_field(json, "n")?,
    })
}

fn field<'a>(json: &'a Json, key: &str) -> Result<&'a Json, String> {
    json.get(key)
        .ok_or_else(|| format!("missing field `{key}`"))
}

fn u64_field(json: &Json, key: &str) -> Result<u64, String> {
    field(json, key)?
        .as_u64()
        .ok_or_else(|| format!("field `{key}` is not a u64"))
}

fn f64_field(json: &Json, key: &str) -> Result<f64, String> {
    field(json, key)?
        .as_f64()
        .ok_or_else(|| format!("field `{key}` is not a number"))
}

fn str_field(json: &Json, key: &str) -> Result<String, String> {
    Ok(field(json, key)?
        .as_str()
        .ok_or_else(|| format!("field `{key}` is not a string"))?
        .to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> SimReport {
        let mut core = CoreMetrics {
            instructions: 40_000,
            cycles: 55_321,
            dram_accesses: 1_234,
            gm_accesses: 9_876,
            wrong_path_loads: 321,
            ..Default::default()
        };
        core.l1d.demand_accesses = 17_001;
        core.l1d.demand_misses = 801;
        core.l1d.miss_latency_sum = 64_123;
        core.l1d.miss_latency_count = 801;
        core.l2.prefetch_accesses = 555;
        core.llc.writeback_accesses = 77;
        core.prefetch.proposed = 900;
        core.prefetch.issued = 850;
        core.prefetch.useful = 600;
        core.prefetch.late = 42;
        core.commit.commit_writes = 3_000;
        core.commit.suf_drop_correct = 120;
        core.class.uncovered = 33;
        SimReport {
            label: "Berti/on-commit/GhostMinion+SUF".to_string(),
            cores: vec![core.clone(), core],
            dram: DramStats {
                reads: 1_000,
                writes: 200,
                row_hits: 700,
                row_misses: 500,
                wq_forwards: 12,
            },
            energy_nj: 12_345.678_9,
            sampling: None,
        }
    }

    #[test]
    fn report_round_trips_exactly() {
        let r = sample_report();
        let s = report_to_string(&r);
        let back = report_from_str(&s).unwrap();
        // Serialized forms must match byte for byte (resume determinism).
        assert_eq!(report_to_string(&back), s);
        assert_eq!(back.label, r.label);
        assert_eq!(back.cores.len(), 2);
        assert_eq!(back.cores[0].l1d.demand_misses, 801);
        assert_eq!(back.cores[0].prefetch.late, 42);
        assert_eq!(back.dram.wq_forwards, 12);
        assert_eq!(back.energy_nj.to_bits(), r.energy_nj.to_bits());
    }

    #[test]
    fn full_detail_encoding_is_byte_stable_without_sampling() {
        // The sampling block must be absent (not `null`) for full-detail
        // reports: pinned report digests hash these exact bytes.
        let s = report_to_string(&sample_report());
        assert!(!s.contains("sampling"));
    }

    #[test]
    fn sampled_report_round_trips_exactly() {
        let mut r = sample_report();
        r.sampling = Some(SamplingSummary {
            windows: 5,
            window_len: 2_000,
            measured_instructions: 10_007,
            functional_instructions: 123_456,
            ipc: MetricStats {
                mean: 1.25,
                stderr: 0.125,
                ci_half: 0.347,
                n: 5,
            },
            mpki_l1d: MetricStats::from_samples(&[20.0, 22.0, 19.5, 21.0, 20.5]),
            pf_accuracy: MetricStats::from_samples(&[0.8, 0.82]),
        });
        let s = report_to_string(&r);
        assert!(s.contains("sampling"));
        let back = report_from_str(&s).unwrap();
        assert_eq!(report_to_string(&back), s);
        let sm = back.sampling.unwrap();
        assert_eq!(sm.windows, 5);
        assert_eq!(sm.ipc.mean.to_bits(), 1.25f64.to_bits());
        assert_eq!(sm.pf_accuracy.n, 2);
    }

    #[test]
    fn decode_reports_missing_fields() {
        let err = report_from_str(r#"{"label":"x"}"#).unwrap_err();
        assert!(err.contains("energy_nj"), "{err}");
    }

    #[test]
    fn decode_reports_type_errors() {
        let mut s = report_to_string(&sample_report());
        s = s.replace("\"reads\":1000", "\"reads\":\"1000\"");
        let err = report_from_str(&s).unwrap_err();
        assert!(err.contains("reads"), "{err}");
    }
}
