//! Trace-artifact exporters: events JSONL and epochs CSV.
//!
//! A traced run's [`ObsCapture`] is exported as two flat files under the
//! store's `obs/` directory, named by the job's content key:
//!
//! - `<key>.events.jsonl` — one JSON object per stored event, in
//!   simulation order, followed by a single `"summary"` line carrying the
//!   per-kind recorded/dropped totals, the MSHR high-water marks, and the
//!   capture configuration.
//! - `<key>.epochs.csv` — the epoch time-series
//!   ([`secpref_obs::EPOCH_CSV_HEADER`] schema).
//!
//! Both artifacts are **deterministic**: their bytes are a pure function
//! of the job and the observability configuration. No timestamps, git
//! state, worker counts, or host details appear in the content, which is
//! what makes the trace-determinism test (byte-identical across
//! `--workers` values and resume-vs-cold) hold trivially.

use crate::json::{obj, Json};
use secpref_obs::{Event, EventKind, ObsCapture, ObsConfig};
use std::fmt::Write as _;
use std::io;
use std::path::{Path, PathBuf};

/// Renders one event as a compact single-line JSON object.
///
/// Hand-formatted rather than going through [`Json`]: every field is a
/// plain integer or a fixed identifier (no escaping needed), and a traced
/// run can store a million events — building a `Json` tree per event
/// would dominate export time.
fn event_line(out: &mut String, ev: &Event) {
    let _ = writeln!(
        out,
        "{{\"cycle\":{},\"core\":{},\"kind\":\"{}\",\"line\":{},\"arg\":{}}}",
        ev.cycle,
        ev.core,
        ev.kind.name(),
        ev.line.raw(),
        ev.arg,
    );
}

/// The trailing summary line of an events JSONL artifact.
fn summary_line(cap: &ObsCapture, cfg: &ObsConfig) -> Json {
    let per_kind: Vec<Json> = EventKind::ALL
        .iter()
        .map(|&kind| {
            obj(vec![
                ("kind", Json::Str(kind.name().to_string())),
                ("recorded", Json::UInt(cap.recorded(kind))),
                ("dropped", Json::UInt(cap.dropped(kind))),
            ])
        })
        .collect();
    let high_water: Vec<Json> = cap
        .mshr_high_water
        .iter()
        .map(|(label, v)| {
            obj(vec![
                ("mshr", Json::Str(label.clone())),
                ("high_water", Json::UInt(*v)),
            ])
        })
        .collect();
    let s = cap.summary();
    obj(vec![
        ("summary", Json::Bool(true)),
        ("filter", Json::Str(cap.filter.clone())),
        ("epoch_interval", Json::UInt(cap.epochs.interval)),
        ("event_capacity", Json::UInt(cfg.event_capacity as u64)),
        ("events_recorded", Json::UInt(s.events_recorded)),
        ("events_stored", Json::UInt(s.events_stored)),
        ("events_dropped", Json::UInt(s.events_dropped)),
        ("epochs", Json::UInt(s.epochs)),
        ("kinds", Json::Arr(per_kind)),
        ("mshr_high_water", Json::Arr(high_water)),
    ])
}

/// Renders the full events JSONL artifact (events + summary line).
pub fn events_jsonl(cap: &ObsCapture, cfg: &ObsConfig) -> String {
    // ~80 bytes per line is a good pre-size for compact integer events.
    let mut out = String::with_capacity(cap.events.len() * 80 + 1024);
    for ev in &cap.events {
        event_line(&mut out, ev);
    }
    out.push_str(&summary_line(cap, cfg).to_string());
    out.push('\n');
    out
}

/// Writes `<key>.events.jsonl` and `<key>.epochs.csv` under `dir`,
/// creating it if needed. Returns the two paths (events, epochs).
///
/// # Errors
///
/// Propagates directory-creation and file-write failures.
pub fn write_trace_artifacts(
    dir: &Path,
    key: &str,
    cfg: &ObsConfig,
    cap: &ObsCapture,
) -> io::Result<(PathBuf, PathBuf)> {
    std::fs::create_dir_all(dir)?;
    let events_path = dir.join(format!("{key}.events.jsonl"));
    let epochs_path = dir.join(format!("{key}.epochs.csv"));
    std::fs::write(&events_path, events_jsonl(cap, cfg))?;
    std::fs::write(&epochs_path, cap.epochs.to_csv())?;
    Ok((events_path, epochs_path))
}

#[cfg(test)]
mod tests {
    use super::*;
    use secpref_obs::{EpochSeries, KIND_COUNT};
    use secpref_types::LineAddr;

    fn capture() -> ObsCapture {
        let mut recorded = [0u64; KIND_COUNT];
        recorded[EventKind::Refetch.index()] = 2;
        recorded[EventKind::SufDrop.index()] = 1;
        ObsCapture {
            events: vec![
                Event {
                    cycle: 10,
                    line: LineAddr::new(0x40),
                    arg: 0,
                    core: 0,
                    kind: EventKind::Refetch,
                },
                Event {
                    cycle: 12,
                    line: LineAddr::new(0x41),
                    arg: 1,
                    core: 0,
                    kind: EventKind::SufDrop,
                },
            ],
            recorded,
            dropped: [0; KIND_COUNT],
            epochs: EpochSeries::new(1000),
            mshr_high_water: vec![("l1d[0]".to_string(), 7)],
            filter: "suf".to_string(),
        }
    }

    #[test]
    fn events_jsonl_is_parseable_line_by_line() {
        let text = events_jsonl(&capture(), &ObsConfig::enabled());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3); // two events + summary
        let first = crate::json::parse(lines[0]).unwrap();
        assert_eq!(first.get("cycle").unwrap().as_u64(), Some(10));
        assert_eq!(first.get("kind").unwrap().as_str(), Some("refetch"));
        assert_eq!(first.get("line").unwrap().as_u64(), Some(0x40));
        let last = crate::json::parse(lines[2]).unwrap();
        assert_eq!(last.get("filter").unwrap().as_str(), Some("suf"));
        assert_eq!(last.get("events_stored").unwrap().as_u64(), Some(2));
        let kinds = last.get("kinds").unwrap().as_arr().unwrap();
        assert_eq!(kinds.len(), KIND_COUNT);
    }

    #[test]
    fn artifacts_land_under_the_requested_dir() {
        let dir = std::env::temp_dir().join(format!("secpref-obs-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let (events, epochs) =
            write_trace_artifacts(&dir, "deadbeef", &ObsConfig::enabled(), &capture()).unwrap();
        assert!(events.ends_with("deadbeef.events.jsonl"));
        assert!(epochs.ends_with("deadbeef.epochs.csv"));
        let csv = std::fs::read_to_string(&epochs).unwrap();
        assert!(csv.starts_with("epoch,core,"));
        // Byte-stable: re-exporting the same capture is identical.
        let again = events_jsonl(&capture(), &ObsConfig::enabled());
        assert_eq!(std::fs::read_to_string(&events).unwrap(), again);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
