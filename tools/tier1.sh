#!/usr/bin/env bash
# Tier-1 gate: formatting, lints, release build, full test suite.
# Run from anywhere; operates on the repo root. Fails fast on the first
# broken step so CI output points straight at the problem.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy (deny warnings, incl. perf lints)"
cargo clippy --offline --workspace --all-targets -- -D warnings -D clippy::perf

echo "== cargo clippy secpref-obs (deny warnings)"
cargo clippy --offline -p secpref-obs --all-targets -- -D warnings

echo "== cargo clippy secpref-telemetry (deny warnings)"
cargo clippy --offline -p secpref-telemetry --all-targets -- -D warnings

echo "== cargo build --release"
cargo build --release

echo "== cargo build --release --examples"
cargo build --release --examples

echo "== cargo test -q"
cargo test -q

echo "== repro --quiet produces no stderr"
# The root `cargo build --release` covers only the root package; the
# repro binary lives in secpref-bench and must be built explicitly.
cargo build --release -p secpref-bench --bin repro
stderr_file="$(mktemp)"
trap 'rm -f "$stderr_file"' EXIT
./target/release/repro --quiet table1 >/dev/null 2>"$stderr_file"
if [ -s "$stderr_file" ]; then
    echo "tier1: repro --quiet wrote to stderr:" >&2
    cat "$stderr_file" >&2
    exit 1
fi

echo "== cross-core attack litmus (release) + many-core smoke"
# The cross-core covert-channel suite (DESIGN.md §13) in release mode:
# LLC prime+probe and DRAM row-buffer channels must decode the pinned
# pattern exactly under the insecure baselines and transmit zero bits
# under on-commit + SUF. Then the scale-out path end to end: the 32-core
# mix-pressure sweep (fig16) at quick scale, and the 8-core
# heterogeneous per-core-policy example.
cargo test --release -q --test security -- llc_prime_probe dram_row_buffer
mc_dir="$(mktemp -d)"
# Plain grep (not -q): -q exits on the first match, which closes the
# pipe while repro is still flushing the rest of the table and turns a
# passing run into an EPIPE panic.
SECPREF_EXP_DIR="$mc_dir" ./target/release/repro --quick --quiet fig16 \
    2>"$stderr_file" | grep '^32 ' >/dev/null \
    || { echo "tier1: fig16 smoke missing the 32-core row" >&2; exit 1; }
if [ -s "$stderr_file" ]; then
    echo "tier1: repro --quiet fig16 wrote to stderr:" >&2
    cat "$stderr_file" >&2
    exit 1
fi
./target/release/examples/multicore_mixes >/dev/null
rm -rf "$mc_dir"

echo "== telemetry sweep: quiet stays silent, artifacts worker-invariant, trace valid"
# Three telemetry contracts (DESIGN.md §12):
#  1. a telemetry-enabled sweep under --quiet writes ZERO stderr bytes
#     (the live progress line must be provably absent from result bytes);
#  2. the content-keyed histogram CSVs are byte-identical across worker
#     counts (they are pure functions of the job, never of the host);
#  3. the span trace is structurally valid trace-event JSON (balanced
#     B/E per track, monotone per-track timestamps) — wall-clock content
#     makes byte comparison meaningless, so it is validated instead.
tel_a="$(mktemp -d)"
tel_b="$(mktemp -d)"
sct_file=""
trap 'rm -f "$stderr_file"; rm -rf "$tel_a" "$tel_b"; if [ -n "$sct_file" ]; then rm -f "$sct_file"; fi' EXIT
SECPREF_EXP_DIR="$tel_a" SECPREF_EXP_WORKERS=1 \
    ./target/release/repro --quick --quiet --telemetry fig1 \
    >/dev/null 2>"$stderr_file"
if [ -s "$stderr_file" ]; then
    echo "tier1: repro --quiet --telemetry wrote to stderr:" >&2
    cat "$stderr_file" >&2
    exit 1
fi
SECPREF_EXP_DIR="$tel_b" SECPREF_EXP_WORKERS=4 \
    ./target/release/repro --quick --quiet --telemetry fig1 \
    >/dev/null 2>"$stderr_file"
if [ -s "$stderr_file" ]; then
    echo "tier1: second --quiet --telemetry run wrote to stderr:" >&2
    cat "$stderr_file" >&2
    exit 1
fi
# Span-trace filenames embed the run id; everything else must byte-match.
diff -r --exclude 'trace-*.json' "$tel_a/telemetry" "$tel_b/telemetry"
ls "$tel_a"/telemetry/*.hist.csv >/dev/null  # the diff must not be vacuous
./target/release/repro --validate-trace "$tel_a"/telemetry/trace-*.json
./target/release/repro --validate-trace "$tel_b"/telemetry/trace-*.json

echo "== simbench smoke (benchmark harness stays runnable)"
# One tiny iteration per cell: validates that the benchmark matrix still
# builds and runs, that BENCH_simcore.json-shaped output parses, and that
# the geomean is positive. Not a performance measurement.
cargo build --release -p secpref-bench --bin simbench
./target/release/simbench --smoke

echo "== simbench perf guard (vs committed BENCH_simcore.json)"
# Perf-regression tripwire: a quick (~25 ms/cell) measurement of the
# pinned matrix, compared against the committed artifact's geomean. A
# drop past the guard band (30%) fails the gate. Escape hatch for noisy
# runners or intentional changes pending a baseline regeneration
# (EXPERIMENTS.md, "Regenerating the simulator baseline"):
#   SECPREF_BENCH_SKIP_GUARD=1 tools/tier1.sh
SECPREF_BENCH_MS=25 ./target/release/simbench \
    --guard BENCH_simcore.json --out "$(mktemp)"

echo "== simbench sampled-mode guard (effective sim rate tripwire)"
# The SMARTS sampled bench at smoke span: one GhostMinion+SUF cell
# streamed from a .sct chunk store, full detail vs sampled. Guards the
# sampled effective instr/sec against the committed artifact's
# `sampled` block (band documented in simbench) — a functional-warming
# path regression shows up here long before the full-budget bench.
SECPREF_BENCH_MS=25 ./target/release/simbench --sampled \
    --guard BENCH_simcore.json --out "$(mktemp)"

echo "== sampled-vs-full smoke differential (3 cells)"
# The tier-1 slice of `repro --sampled`: three representative cells
# (non-secure, GhostMinion+SUF, timely-secure+SUF) must reproduce their
# full-detail IPC within 2% and inside the sampled run's own 95% CI,
# with the sampled-report audit rules armed (DESIGN.md §14).
./target/release/repro --quiet --sampled --quick

echo "== sectrace streamed-replay differential"
# Capture a small trace to a chunk store, verify its integrity, replay
# it streamed, and diff the canonical report digest against the same
# workload regenerated in memory. Any divergence between bounded-memory
# streaming and whole-trace indexing fails the gate (DESIGN.md §11).
cargo build --release -p secpref-bench --bin sectrace
sct_file="$(mktemp -u).sct"
./target/release/sectrace capture --trace mcf_like_a --n 120000 \
    --out "$sct_file" --chunk 4096 >/dev/null
./target/release/sectrace verify "$sct_file" >/dev/null
./target/release/sectrace replay "$sct_file" \
    --warmup 10000 --measure 80000 --compare-mem

echo "== secpref-check fuzz (pinned seed, 2k-iteration budget)"
# Deterministic fast check: differential golden models + invariant audit
# over every (mode, prefetcher) cell. The seed is pinned inside the
# fuzzer, so a failure here is reproducible bit-for-bit and drops a
# replayable .trace artifact under target/check/.
./target/release/repro --quiet --check --check-iters 2000

echo "tier1: all green"
