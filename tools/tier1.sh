#!/usr/bin/env bash
# Tier-1 gate: formatting, lints, release build, full test suite.
# Run from anywhere; operates on the repo root. Fails fast on the first
# broken step so CI output points straight at the problem.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy (deny warnings)"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "== cargo build --release"
cargo build --release

echo "== cargo test -q"
cargo test -q

echo "tier1: all green"
