//! Cross-crate full-system tests: the paper's qualitative results must
//! hold end to end on representative workloads, and the simulator must be
//! deterministic and conservation-correct.

use secure_prefetch::prelude::*;
use secure_prefetch::sim::{self, System};
use secure_prefetch::trace::suite;

const WARMUP: u64 = 10_000;
const MEASURE: u64 = 50_000;
const TRACE_LEN: usize = 80_000;

fn run(cfg: &SystemConfig, trace: &str) -> sim::SimReport {
    let t = suite::cached_trace(trace, TRACE_LEN);
    sim::run_single_with_window(cfg, &t, WARMUP, MEASURE)
}

fn base() -> SystemConfig {
    SystemConfig::baseline(1)
}

fn gm() -> SystemConfig {
    base().with_secure(SecureMode::GhostMinion)
}

#[test]
fn simulation_is_deterministic() {
    let a = run(&gm().with_prefetcher(PrefetcherKind::Berti), "gcc_like");
    let b = run(&gm().with_prefetcher(PrefetcherKind::Berti), "gcc_like");
    assert_eq!(a.ipc(), b.ipc());
    assert_eq!(
        a.cores[0].l1d.demand_accesses,
        b.cores[0].l1d.demand_accesses
    );
    assert_eq!(a.cores[0].prefetch.issued, b.cores[0].prefetch.issued);
}

#[test]
fn measurement_window_is_exact() {
    // Retirement is 4-wide, so the window may overshoot by a few
    // instructions but never undershoot.
    let r = run(&base(), "leela_like");
    assert!(r.cores[0].instructions >= MEASURE);
    assert!(r.cores[0].instructions < MEASURE + 16);
    assert!(r.cores[0].cycles > 0);
}

#[test]
fn ghostminion_costs_performance_without_prefetching() {
    // Fig. 1's red line: the secure system is slower (by a modest factor).
    for trace in ["bwaves_like", "mcf_like_a", "pr_large"] {
        let ns = run(&base(), trace).ipc();
        let s = run(&gm(), trace).ipc();
        assert!(
            s < ns,
            "{trace}: GhostMinion ({s:.3}) must be slower than non-secure ({ns:.3})"
        );
        assert!(
            s > ns * 0.6,
            "{trace}: GhostMinion overhead implausibly high ({:.1}%)",
            (1.0 - s / ns) * 100.0
        );
    }
}

#[test]
fn ghostminion_multiplies_l1d_traffic() {
    // Fig. 3: commit requests roughly double L1D accesses.
    let ns = run(&base(), "bwaves_like");
    let s = run(&gm(), "bwaves_like");
    let ratio = s.apki(CacheLevel::L1d) / ns.apki(CacheLevel::L1d);
    assert!(
        ratio > 1.5,
        "secure L1D traffic should exceed 1.5x non-secure (got {ratio:.2}x)"
    );
    assert!(s.cores[0].l1d.commit_accesses > 0);
    assert_eq!(
        ns.cores[0].l1d.commit_accesses, 0,
        "non-secure has no commit path"
    );
}

#[test]
fn prefetching_helps_streams() {
    let nopf = run(&base(), "bwaves_like").ipc();
    let berti = run(
        &base().with_prefetcher(PrefetcherKind::Berti),
        "bwaves_like",
    )
    .ipc();
    assert!(
        berti > nopf * 1.05,
        "Berti must speed up a stream by >5% (got {:.3} vs {:.3})",
        berti,
        nopf
    );
}

#[test]
fn suf_reduces_commit_traffic_and_is_accurate() {
    let cfg = gm()
        .with_prefetcher(PrefetcherKind::Berti)
        .with_mode(PrefetchMode::OnCommit);
    let without = run(&cfg, "xalancbmk_like");
    let with = run(&cfg.clone().with_suf(true), "xalancbmk_like");
    let c = &with.cores[0].commit;
    assert!(c.suf_dropped > 0, "SUF must filter some updates");
    assert!(
        with.suf_accuracy() > 0.9,
        "paper reports ~99% SUF accuracy; got {:.3}",
        with.suf_accuracy()
    );
    // Filtering must reduce L1D commit-path traffic.
    assert!(
        with.cores[0].l1d.commit_accesses < without.cores[0].l1d.commit_accesses,
        "SUF must reduce commit accesses ({} vs {})",
        with.cores[0].l1d.commit_accesses,
        without.cores[0].l1d.commit_accesses
    );
}

#[test]
fn tsb_beats_naive_on_commit_berti_on_streams() {
    let commit = gm()
        .with_prefetcher(PrefetcherKind::Berti)
        .with_mode(PrefetchMode::OnCommit);
    let tsb = commit.clone().with_timely_secure(true);
    let a = run(&commit, "cactu_like").ipc();
    let b = run(&tsb, "cactu_like").ipc();
    assert!(
        b >= a * 0.98,
        "TSB ({b:.3}) must not lose to naive on-commit Berti ({a:.3})"
    );
}

#[test]
fn on_commit_classification_produces_commit_late() {
    // Fig. 6's new class must actually appear for on-commit prefetching
    // on a prefetch-friendly workload.
    let cfg = gm()
        .with_prefetcher(PrefetcherKind::Berti)
        .with_mode(PrefetchMode::OnCommit);
    let r = run(&cfg, "bwaves_like");
    let cls = &r.cores[0].class;
    assert!(
        cls.total() > 0,
        "on-commit runs must classify demand misses"
    );
    assert!(
        cls.commit_late + cls.missed_opportunity > 0,
        "the commit-late/missed-opportunity classes must be populated: {cls:?}"
    );
}

#[test]
fn energy_tracks_traffic() {
    // Fig. 14: the secure system burns more dynamic energy.
    let ns = run(&base(), "bwaves_like").energy_nj;
    let s = run(&gm(), "bwaves_like").energy_nj;
    assert!(
        s > ns,
        "GhostMinion traffic must cost energy ({s:.0} vs {ns:.0} nJ)"
    );
}

#[test]
fn multicore_runs_and_reports_per_core() {
    let traces: Vec<_> = ["gcc_like", "xz_like", "leela_like", "bfs_small"]
        .iter()
        .map(|n| suite::cached_trace(n, 30_000))
        .collect();
    let r = sim::run_multi_with_window(&gm(), traces, 3_000, 12_000);
    assert_eq!(r.cores.len(), 4);
    for (i, c) in r.cores.iter().enumerate() {
        assert!(
            c.instructions >= 12_000 && c.instructions < 12_016,
            "core {i}"
        );
        assert!(c.ipc() > 0.0, "core {i}");
    }
}

#[test]
fn all_prefetchers_run_all_modes_without_panicking() {
    for kind in PrefetcherKind::EVALUATED {
        for cfg in [
            base().with_prefetcher(kind),
            gm().with_prefetcher(kind),
            gm().with_prefetcher(kind).with_mode(PrefetchMode::OnCommit),
            gm().with_prefetcher(kind)
                .with_mode(PrefetchMode::OnCommit)
                .with_timely_secure(true)
                .with_suf(true),
        ] {
            let t = suite::cached_trace("gcc_like", 20_000);
            let r = sim::run_single_with_window(&cfg, &t, 2_000, 10_000);
            assert!(r.ipc() > 0.0, "{} / {:?}", kind.name(), cfg.prefetch_mode);
        }
    }
}

#[test]
fn system_exposes_probe_api() {
    let t = suite::cached_trace("leela_like", 10_000);
    let mut sys = System::new(base(), vec![t]).with_window(1_000, 5_000);
    sys.run();
    // The hot set of leela_like lives near the component base; at least
    // one of its lines must be resident somewhere.
    let stats = sys.core_stats(0);
    assert!(stats.retired >= 6_000);
    assert!(stats.branches > 0);
}
