//! End-to-end security properties (the paper's threat model, Section
//! II-A): transient execution must leave no observable footprint in the
//! non-speculative hierarchy under GhostMinion, with or without secure
//! prefetching — and the insecure configurations must demonstrably leak
//! (otherwise these tests would pass vacuously).

use secure_prefetch::prelude::*;
use secure_prefetch::sim::System;
use secure_prefetch::trace::{Instr, Trace};
use std::sync::Arc;

const SECRET_BASE: u64 = 0x7777_0000;
/// Probe window in lines around the secret region.
const PROBE_LINES: u64 = 16;

/// Victim trace with a trained-then-mispredicting branch whose wrong path
/// transiently performs `gadget_loads` strided secret-dependent loads.
fn victim_trace(gadget_loads: u64) -> Arc<Trace> {
    let mut instrs = Vec::new();
    for i in 0..200u64 {
        instrs.push(Instr::load(0x100, 0x1000 + (i % 16) * 64));
        instrs.push(Instr::branch(0x200, true));
        instrs.push(Instr::alu(0x300));
    }
    instrs.push(Instr::branch(0x200, false));
    let gadget = (instrs.len() - 1) as u32;
    for i in 0..600u64 {
        instrs.push(Instr::alu(0x400));
        if i % 9 == 0 {
            instrs.push(Instr::load(0x500, 0x2000 + (i % 8) * 64));
        }
    }
    let mut t = Trace::new("victim", instrs);
    t.attach_wrong_path(
        gadget,
        (0..gadget_loads)
            .map(|k| Addr::new(SECRET_BASE + k * 64))
            .collect(),
    );
    Arc::new(t)
}

/// Runs the victim under `cfg`; returns the secret-region lines visible
/// in L1D/L2/LLC afterwards, and asserts the gadget did execute.
fn leaked_lines(cfg: &SystemConfig) -> Vec<u64> {
    let trace = victim_trace(4);
    let n = trace.instrs.len() as u64;
    let mut sys = System::new(cfg.clone(), vec![trace]).with_window(0, n);
    sys.run();
    assert!(
        sys.wrong_path_loads(0) > 0,
        "gadget never executed transiently — the test is vacuous"
    );
    (0..PROBE_LINES)
        .filter(|k| {
            let line = Addr::new(SECRET_BASE + k * 64).line();
            [CacheLevel::L1d, CacheLevel::L2, CacheLevel::Llc]
                .iter()
                .any(|&lvl| sys.probe_line(0, lvl, line))
        })
        .collect()
}

#[test]
fn non_secure_cache_leaks_transient_loads() {
    let leaked = leaked_lines(&SystemConfig::baseline(1));
    assert!(
        !leaked.is_empty(),
        "a conventional cache must expose transiently loaded lines"
    );
}

#[test]
fn ghostminion_hides_transient_loads() {
    let cfg = SystemConfig::baseline(1).with_secure(SecureMode::GhostMinion);
    assert_eq!(
        leaked_lines(&cfg),
        Vec::<u64>::new(),
        "GhostMinion must not expose transient loads in L1D/L2/LLC"
    );
}

#[test]
fn on_access_prefetcher_reopens_the_channel_on_ghostminion() {
    let cfg = SystemConfig::baseline(1)
        .with_secure(SecureMode::GhostMinion)
        .with_prefetcher(PrefetcherKind::IpStride)
        .with_mode(PrefetchMode::OnAccess);
    assert!(
        !leaked_lines(&cfg).is_empty(),
        "an on-access prefetcher trained by transient loads must leak \
         (this is the paper's motivating attack)"
    );
}

#[test]
fn on_commit_prefetcher_closes_the_channel() {
    for kind in PrefetcherKind::EVALUATED {
        let cfg = SystemConfig::baseline(1)
            .with_secure(SecureMode::GhostMinion)
            .with_prefetcher(kind)
            .with_mode(PrefetchMode::OnCommit);
        assert_eq!(
            leaked_lines(&cfg),
            Vec::<u64>::new(),
            "{} trained at commit must not leak",
            kind.name()
        );
    }
}

#[test]
fn timely_secure_prefetchers_close_the_channel() {
    for kind in PrefetcherKind::EVALUATED {
        let cfg = SystemConfig::baseline(1)
            .with_secure(SecureMode::GhostMinion)
            .with_prefetcher(kind)
            .with_mode(PrefetchMode::OnCommit)
            .with_timely_secure(true)
            .with_suf(true);
        assert_eq!(
            leaked_lines(&cfg),
            Vec::<u64>::new(),
            "TS-{} (+SUF) must not leak",
            kind.name()
        );
    }
}

/// PREFENDER-style priming victim (wrong-path loads inherit the gadget
/// branch's IP, so the correct path can train any prefetcher on that IP
/// before the burst). Three phases, each aimed at a prefetcher family:
///
/// - **Cold footprint sweep**: a recurring 8-line footprint across 200
///   spatial regions fills Bingo's pattern history (the PHT only commits
///   on accumulation-table eviction, so it needs >128 regions).
/// - **Chained +1 cold walk**: dependent loads keep exactly one miss in
///   flight, so stride/delta prefetchers (IP-Stride, IPCP, SPP) see the
///   +1 deltas *in program order* (a superscalar walk trains them on a
///   scrambled −1/+3 stream), and each fill lands a full fetch latency
///   after its predecessor's access — which is precisely Berti's
///   timeliness condition for crediting a delta.
/// - **Quiesce**: ALUs drain the prefetch queue and MSHRs so the burst's
///   own proposals are not resource-dropped.
///
/// The mispredicted branch then bursts `gadget_loads` wrong-path loads
/// at the start of the *secret* region. The burst is kept shorter than
/// the trained patterns' reach: extrapolated prefetches must target
/// lines *beyond* the in-flight demands, or they merge onto the demand
/// MSHRs (whose speculative fills go only to the GM) and nothing ever
/// reaches the probeable hierarchy.
fn pf_victim_trace(gadget_loads: u64) -> Arc<Trace> {
    const PRIME_BASE: u64 = 0x100_0000;
    const WALK_BASE: u64 = 0x40_0000;
    const REGION_BYTES: u64 = 32 * 64; // one Bingo region
    let mut instrs = Vec::new();
    for r in 0..200u64 {
        for off in 0..8u64 {
            instrs.push(Instr::load(0x200, PRIME_BASE + r * REGION_BYTES + off * 64));
            instrs.push(Instr::alu(0x300));
        }
        instrs.push(Instr::branch(0x200, true));
    }
    let mut last_load: Option<usize> = None;
    for off in 0..128u64 {
        let dep = last_load.map_or(0, |l| instrs.len() - l) as u16;
        last_load = Some(instrs.len());
        instrs.push(Instr::load_dep(0x200, WALK_BASE + off * 64, dep));
    }
    for _ in 0..4000u64 {
        instrs.push(Instr::alu(0x400));
    }
    instrs.push(Instr::branch(0x200, false));
    let gadget = (instrs.len() - 1) as u32;
    for i in 0..400u64 {
        instrs.push(Instr::alu(0x400));
        if i % 9 == 0 {
            instrs.push(Instr::load(0x500, 0x2000 + (i % 8) * 64));
        }
    }
    let mut t = Trace::new("pf-victim", instrs);
    t.attach_wrong_path(
        gadget,
        (0..gadget_loads)
            .map(|k| Addr::new(SECRET_BASE + k * 64))
            .collect(),
    );
    Arc::new(t)
}

/// Probe window for the prefetcher litmus: wider than [`PROBE_LINES`]
/// because trained prefetchers reach well past the burst (Berti's ranked
/// deltas extend ~16 lines; IPCP streams further).
const PF_PROBE_LINES: u64 = 64;

/// Secret-region lines visible in L1D/L2/LLC after running `trace`.
fn probe_footprint(cfg: &SystemConfig, trace: Arc<Trace>) -> Vec<u64> {
    let n = trace.instrs.len() as u64;
    let mut sys = System::new(cfg.clone(), vec![trace]).with_window(0, n);
    sys.run();
    assert!(
        sys.wrong_path_loads(0) > 0,
        "gadget never executed transiently — the test is vacuous"
    );
    (0..PF_PROBE_LINES)
        .filter(|k| {
            let line = Addr::new(SECRET_BASE + k * 64).line();
            [CacheLevel::L1d, CacheLevel::L2, CacheLevel::Llc]
                .iter()
                .any(|&lvl| sys.probe_line(0, lvl, line))
        })
        .collect()
}

/// The paper's core claim, one cell at a time: *every* evaluated
/// prefetcher trained on-access by transient loads measurably perturbs
/// the probe region even under GhostMinion, while the same prefetcher
/// moved to commit-time training (plus SUF) leaves zero footprint. The
/// on-access half doubles as the anti-vacuity check for the on-commit
/// half: the trace demonstrably trains this prefetcher into the secret
/// region, so an empty on-commit footprint is a real security result.
#[test]
fn every_prefetcher_leaks_on_access_and_is_clean_on_commit() {
    for kind in PrefetcherKind::EVALUATED {
        let insecure = SystemConfig::baseline(1)
            .with_secure(SecureMode::GhostMinion)
            .with_prefetcher(kind)
            .with_mode(PrefetchMode::OnAccess);
        let leaked = probe_footprint(&insecure, pf_victim_trace(3));
        assert!(
            !leaked.is_empty(),
            "{} trained on-access must perturb the probe region \
             (vacuous pass: the gadget never trained it)",
            kind.name()
        );

        let secure = insecure
            .clone()
            .with_mode(PrefetchMode::OnCommit)
            .with_suf(true);
        assert_eq!(
            probe_footprint(&secure, pf_victim_trace(3)),
            Vec::<u64>::new(),
            "{} trained at commit under GhostMinion+SUF must leave zero footprint",
            kind.name()
        );
    }
}

#[test]
fn suf_does_not_reopen_the_channel() {
    let cfg = SystemConfig::baseline(1)
        .with_secure(SecureMode::GhostMinion)
        .with_suf(true);
    assert_eq!(leaked_lines(&cfg), Vec::<u64>::new());
}

// ---------------------------------------------------------------------------
// Cross-core attack litmus suite
//
// Two-core systems built with per-core policies ([`CorePolicy`]): core 0 is
// the *transmitter* (runs the victim with a secret-dependent wrong path),
// core 1 is the *receiver* (always non-secure, no prefetcher — a plain
// observer). The transmitter tries to push a pinned bit pattern through a
// shared resource; the receiver decodes it after the run. Each channel is
// exercised in both directions: the insecure baselines must recover the
// exact pattern (anti-vacuity — the channel demonstrably works), and the
// same traces under GhostMinion + on-commit + SUF must transmit zero bits.
// ---------------------------------------------------------------------------

/// The pinned pattern every covert-channel cell transmits (MSB first).
const PATTERN: [bool; 8] = [true, false, true, true, false, false, true, false];

/// Receiver policy: plain non-secure core without a prefetcher.
fn receiver_policy() -> CorePolicy {
    CorePolicy::of(&SystemConfig::baseline(1))
}

fn gm_on_access_ipstride() -> CorePolicy {
    CorePolicy {
        secure: SecureMode::GhostMinion,
        prefetcher: PrefetcherKind::IpStride,
        prefetch_mode: PrefetchMode::OnAccess,
        suf: false,
        timely_secure: false,
    }
}

fn gm_on_commit_suf_ipstride() -> CorePolicy {
    CorePolicy {
        prefetch_mode: PrefetchMode::OnCommit,
        suf: true,
        ..gm_on_access_ipstride()
    }
}

fn nonsecure_ipstride_on_access() -> CorePolicy {
    CorePolicy {
        secure: SecureMode::NonSecure,
        ..gm_on_access_ipstride()
    }
}

/// Extends `instrs` with `n` filler ALU ops.
fn pad_alu(instrs: &mut Vec<Instr>, n: usize) {
    for _ in 0..n {
        instrs.push(Instr::alu(0x30));
    }
}

// --- Channel 1: LLC prime+probe -------------------------------------------
//
// The receiver primes 16 ways of one LLC set per bit, then idles. The
// transmitter trains a per-bit branch, mispredicts it, and the wrong path
// issues 24 loads striding whole LLC-set periods: bit=1 targets the primed
// set, bit=0 a dummy set. On an unprotected core the transient fills evict
// the primed lines directly; on GhostMinion the demands stay invisible but
// an on-access prefetcher trained by them extrapolates *past* the in-flight
// burst and its (non-speculative) fills land in the primed set. The
// receiver decodes each bit by counting evicted primed lines.

/// LLC sets (two-core baseline: 4096 sets, 16 ways).
const LLC_SETS: u64 = 4096;
const LLC_WAYS: u64 = 16;
/// Primed LLC set for bit `b`, spaced 64 sets apart so each bit's lines
/// land in a different DRAM bank (set-aliased lines are 64 rows apart,
/// which is bank-invariant under the 8-bank default — packing all bits
/// into one bank serializes every access behind row conflicts).
fn llc_target_set(b: u64) -> u64 {
    256 + b * 64
}
/// Dummy LLC set the bit=0 wrong path lands in.
fn llc_dummy_set(b: u64) -> u64 {
    2048 + b * 64
}
/// The receiver's primed lines for bit `b`.
fn llc_prime_lines(b: u64) -> Vec<u64> {
    (1..=LLC_WAYS)
        .map(|j| j * LLC_SETS + llc_target_set(b))
        .collect()
}

/// Transmitter: ALU preamble (lets the receiver finish priming), then per
/// bit: train a distinct branch IP, mispredict it with a 10-load wrong-path
/// burst striding into the bit's set, then a gap for prefetch fills to land.
/// The burst stays well under the 16 L1D MSHRs: a wider burst pins every
/// MSHR and the trained prefetcher's own injections get resource-dropped.
fn llc_transmitter_trace(pattern: &[bool]) -> Arc<Trace> {
    let mut instrs = Vec::new();
    pad_alu(&mut instrs, 30_000);
    let mut gadgets = Vec::new();
    for (b, &bit) in pattern.iter().enumerate() {
        let ip = 0x4000 + b as u64 * 0x40;
        for _ in 0..100 {
            instrs.push(Instr::branch(ip, true));
            instrs.push(Instr::alu(0x30));
        }
        instrs.push(Instr::branch(ip, false));
        let set = if bit {
            llc_target_set(b as u64)
        } else {
            llc_dummy_set(b as u64)
        };
        let addrs = (0..10u64)
            .map(|j| Addr::new(((100 + j) * LLC_SETS + set) * 64))
            .collect();
        gadgets.push((instrs.len() as u32 - 1, addrs));
        // Wide gap: the burst and its prefetches serialize behind row
        // conflicts in one DRAM bank (~110 cycles each) and must fully
        // drain before the next bit's burst wants the MSHRs back.
        pad_alu(&mut instrs, 10_000);
    }
    let mut t = Trace::new("llc-tx", instrs);
    for (idx, addrs) in gadgets {
        t.attach_wrong_path(idx, addrs);
    }
    Arc::new(t)
}

/// Receiver: prime every bit's set, then idle (padded to `len` so neither
/// trace replays — a replay would re-prime and erase the signal).
fn llc_receiver_trace(pattern_len: usize, len: usize) -> Arc<Trace> {
    let mut instrs = Vec::new();
    for b in 0..pattern_len as u64 {
        for line in llc_prime_lines(b) {
            instrs.push(Instr::load(0x900, line * 64));
            instrs.push(Instr::alu(0x30));
        }
    }
    assert!(
        instrs.len() < len,
        "receiver prime phase must fit the window"
    );
    let pad = len - instrs.len();
    pad_alu(&mut instrs, pad);
    Arc::new(Trace::new("llc-rx", instrs))
}

/// Runs the LLC channel; returns per-bit evicted-prime counts, the full
/// primed-line residency vector, and the transmitter's prefetch-issue count.
fn run_llc_channel(tx: CorePolicy, pattern: &[bool]) -> (Vec<u64>, Vec<bool>, u64) {
    let tx_trace = llc_transmitter_trace(pattern);
    let n = tx_trace.instrs.len();
    let rx_trace = llc_receiver_trace(pattern.len(), n);
    let cfg = SystemConfig::baseline(2).with_core_policies(vec![tx, receiver_policy()]);
    cfg.validate().expect("litmus config must be valid");
    let mut sys = System::new(cfg, vec![tx_trace, rx_trace]).with_window(0, n as u64);
    sys.run();
    assert!(
        sys.wrong_path_loads(0) > 0,
        "transmitter gadget never executed transiently — the test is vacuous"
    );
    let residency: Vec<bool> = (0..pattern.len() as u64)
        .flat_map(llc_prime_lines)
        .map(|line| sys.probe_line(0, CacheLevel::Llc, Addr::new(line * 64).line()))
        .collect();
    let evicted = (0..pattern.len() as u64)
        .map(|b| {
            llc_prime_lines(b)
                .iter()
                .filter(|&&line| !sys.probe_line(0, CacheLevel::Llc, Addr::new(line * 64).line()))
                .count() as u64
        })
        .collect();
    (evicted, residency, sys.report().cores[0].prefetch.issued)
}

#[test]
fn llc_prime_probe_leaks_across_cores_without_protection() {
    // Unprotected transmitter: transient wrong-path fills evict the primed
    // set directly; every way is replaced.
    let (evicted, _, _) = run_llc_channel(receiver_policy(), &PATTERN);
    let decoded: Vec<bool> = evicted.iter().map(|&e| e >= LLC_WAYS / 2).collect();
    assert_eq!(decoded, PATTERN, "evictions per bit: {evicted:?}");
}

#[test]
fn llc_prime_probe_leaks_through_on_access_prefetcher_on_ghostminion() {
    // GhostMinion hides the transient demands, but the on-access-trained
    // IP-stride prefetcher extrapolates beyond the burst; its fills are
    // non-speculative and land in the primed set (the paper's cross-core
    // variant of the motivating attack).
    let (evicted, _, pf_issued) = run_llc_channel(gm_on_access_ipstride(), &PATTERN);
    assert!(
        pf_issued > 0,
        "wrong path never trained the prefetcher — vacuous"
    );
    let decoded: Vec<bool> = evicted.iter().map(|&e| e >= 2).collect();
    assert_eq!(decoded, PATTERN, "evictions per bit: {evicted:?}");
}

#[test]
fn llc_prime_probe_transmits_zero_bits_under_oncommit_suf() {
    // Same traces, secure prefetching: wrong-path work never commits, so
    // the prefetcher never trains and the primed sets stay fully resident.
    // The differential check (pattern vs. all-zeros) proves the shared LLC
    // state is secret-independent, not merely below a decode threshold.
    let (evicted_p, residency_p, pf_p) = run_llc_channel(gm_on_commit_suf_ipstride(), &PATTERN);
    let (evicted_z, residency_z, pf_z) = run_llc_channel(gm_on_commit_suf_ipstride(), &[false; 8]);
    assert_eq!(
        evicted_p,
        vec![0; PATTERN.len()],
        "primed lines were evicted"
    );
    assert_eq!(
        residency_p, residency_z,
        "LLC residency depends on the secret"
    );
    assert_eq!(evicted_z, vec![0; PATTERN.len()]);
    assert_eq!(
        (pf_p, pf_z),
        (0, 0),
        "on-commit training saw no committed loads"
    );
}

// --- Channel 2: DRAM row-buffer timing ------------------------------------
//
// One system per bit. The transmitter's wrong path touches the *same four
// lines* of one DRAM row in forward (bit=1) or reverse (bit=0) order — the
// direct footprint is secret-independent; only the learned stride direction
// differs. An on-access prefetcher extrapolates forward (opening row R0+1
// in its bank) or backward (rows R0−1/R0−2, different banks). The receiver
// later issues one cold load into row R0+1: a row-buffer hit (bit=1) is
// t_rcd cheaper than a closed-bank access (bit=0).

/// Row-aligned base line of the transmitter's DRAM row (row 512 under the
/// default 4 KB rows / 64 B lines geometry).
const DRAM_BASE_LINE: u64 = 512 * 64;

fn dram_transmitter_trace(bit: bool, len: usize) -> Arc<Trace> {
    let mut instrs = Vec::new();
    let ip = 0x5000;
    for _ in 0..100 {
        instrs.push(Instr::branch(ip, true));
        instrs.push(Instr::alu(0x30));
    }
    instrs.push(Instr::branch(ip, false));
    let gadget = instrs.len() as u32 - 1;
    let mut lines: Vec<u64> = (0..4).map(|j| DRAM_BASE_LINE + j * 16).collect();
    if !bit {
        lines.reverse();
    }
    let pad = len - instrs.len();
    pad_alu(&mut instrs, pad);
    let mut t = Trace::new("dram-tx", instrs);
    t.attach_wrong_path(gadget, lines.iter().map(|&l| Addr::new(l * 64)).collect());
    Arc::new(t)
}

fn dram_receiver_trace(len: usize) -> Arc<Trace> {
    let mut instrs = Vec::new();
    // Idle long enough that the transmitter's burst (and any prefetch it
    // triggers) has fully drained into DRAM state.
    pad_alu(&mut instrs, 20_000);
    instrs.push(Instr::load(0x900, (DRAM_BASE_LINE + 96) * 64));
    let pad = len - instrs.len();
    pad_alu(&mut instrs, pad);
    Arc::new(Trace::new("dram-rx", instrs))
}

/// Runs one bit through the DRAM channel; returns the receiver's single
/// cold-probe latency (and asserts it really was a single miss).
fn dram_probe_latency(tx: CorePolicy, bit: bool) -> u64 {
    const LEN: usize = 25_000;
    let tx_trace = dram_transmitter_trace(bit, LEN);
    let rx_trace = dram_receiver_trace(LEN);
    let cfg = SystemConfig::baseline(2).with_core_policies(vec![tx, receiver_policy()]);
    cfg.validate().expect("litmus config must be valid");
    let mut sys = System::new(cfg, vec![tx_trace, rx_trace]).with_window(0, LEN as u64);
    sys.run();
    assert!(
        sys.wrong_path_loads(0) > 0,
        "gadget never executed — vacuous"
    );
    let rx = &sys.report().cores[1];
    assert_eq!(
        rx.l1d.miss_latency_count, 1,
        "receiver must make exactly one probe"
    );
    rx.l1d.miss_latency_sum
}

/// Decodes the pattern through the DRAM channel under `tx`; `closed` is the
/// calibrated closed-bank latency (a bit=0 transmission).
fn dram_decode(tx: CorePolicy, closed: u64) -> Vec<bool> {
    PATTERN
        .iter()
        .map(|&bit| {
            let lat = dram_probe_latency(tx, bit);
            lat + 25 <= closed // ≥ half a t_rcd faster ⇒ row-buffer hit
        })
        .collect()
}

#[test]
fn dram_row_buffer_leaks_prefetch_direction_across_cores() {
    // Insecure in both flavours: a plain non-secure transmitter and a
    // GhostMinion transmitter whose on-access prefetcher is trained by the
    // wrong path. The direct wrong-path footprint is identical for both
    // bit values, so any decoded bit is carried purely by the prefetcher's
    // learned direction — DRAM row-buffer state, not cache residency.
    for tx in [nonsecure_ipstride_on_access(), gm_on_access_ipstride()] {
        let closed = dram_probe_latency(tx, false);
        assert_eq!(dram_decode(tx, closed), PATTERN, "tx policy {tx:?}");
    }
}

#[test]
fn dram_row_buffer_transmits_zero_bits_under_oncommit_suf() {
    let tx = gm_on_commit_suf_ipstride();
    let closed = dram_probe_latency(tx, false);
    // Zero transmitted bits, and bit-exact latency equality: the receiver's
    // probe timing is fully secret-independent.
    assert_eq!(dram_decode(tx, closed), vec![false; PATTERN.len()]);
    assert_eq!(dram_probe_latency(tx, true), closed);
}
