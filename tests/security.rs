//! End-to-end security properties (the paper's threat model, Section
//! II-A): transient execution must leave no observable footprint in the
//! non-speculative hierarchy under GhostMinion, with or without secure
//! prefetching — and the insecure configurations must demonstrably leak
//! (otherwise these tests would pass vacuously).

use secure_prefetch::prelude::*;
use secure_prefetch::sim::System;
use secure_prefetch::trace::{Instr, Trace};
use std::sync::Arc;

const SECRET_BASE: u64 = 0x7777_0000;
/// Probe window in lines around the secret region.
const PROBE_LINES: u64 = 16;

/// Victim trace with a trained-then-mispredicting branch whose wrong path
/// transiently performs `gadget_loads` strided secret-dependent loads.
fn victim_trace(gadget_loads: u64) -> Arc<Trace> {
    let mut instrs = Vec::new();
    for i in 0..200u64 {
        instrs.push(Instr::load(0x100, 0x1000 + (i % 16) * 64));
        instrs.push(Instr::branch(0x200, true));
        instrs.push(Instr::alu(0x300));
    }
    instrs.push(Instr::branch(0x200, false));
    let gadget = (instrs.len() - 1) as u32;
    for i in 0..600u64 {
        instrs.push(Instr::alu(0x400));
        if i % 9 == 0 {
            instrs.push(Instr::load(0x500, 0x2000 + (i % 8) * 64));
        }
    }
    let mut t = Trace::new("victim", instrs);
    t.attach_wrong_path(
        gadget,
        (0..gadget_loads)
            .map(|k| Addr::new(SECRET_BASE + k * 64))
            .collect(),
    );
    Arc::new(t)
}

/// Runs the victim under `cfg`; returns the secret-region lines visible
/// in L1D/L2/LLC afterwards, and asserts the gadget did execute.
fn leaked_lines(cfg: &SystemConfig) -> Vec<u64> {
    let trace = victim_trace(4);
    let n = trace.instrs.len() as u64;
    let mut sys = System::new(cfg.clone(), vec![trace]).with_window(0, n);
    sys.run();
    assert!(
        sys.wrong_path_loads(0) > 0,
        "gadget never executed transiently — the test is vacuous"
    );
    (0..PROBE_LINES)
        .filter(|k| {
            let line = Addr::new(SECRET_BASE + k * 64).line();
            [CacheLevel::L1d, CacheLevel::L2, CacheLevel::Llc]
                .iter()
                .any(|&lvl| sys.probe_line(0, lvl, line))
        })
        .collect()
}

#[test]
fn non_secure_cache_leaks_transient_loads() {
    let leaked = leaked_lines(&SystemConfig::baseline(1));
    assert!(
        !leaked.is_empty(),
        "a conventional cache must expose transiently loaded lines"
    );
}

#[test]
fn ghostminion_hides_transient_loads() {
    let cfg = SystemConfig::baseline(1).with_secure(SecureMode::GhostMinion);
    assert_eq!(
        leaked_lines(&cfg),
        Vec::<u64>::new(),
        "GhostMinion must not expose transient loads in L1D/L2/LLC"
    );
}

#[test]
fn on_access_prefetcher_reopens_the_channel_on_ghostminion() {
    let cfg = SystemConfig::baseline(1)
        .with_secure(SecureMode::GhostMinion)
        .with_prefetcher(PrefetcherKind::IpStride)
        .with_mode(PrefetchMode::OnAccess);
    assert!(
        !leaked_lines(&cfg).is_empty(),
        "an on-access prefetcher trained by transient loads must leak \
         (this is the paper's motivating attack)"
    );
}

#[test]
fn on_commit_prefetcher_closes_the_channel() {
    for kind in PrefetcherKind::EVALUATED {
        let cfg = SystemConfig::baseline(1)
            .with_secure(SecureMode::GhostMinion)
            .with_prefetcher(kind)
            .with_mode(PrefetchMode::OnCommit);
        assert_eq!(
            leaked_lines(&cfg),
            Vec::<u64>::new(),
            "{} trained at commit must not leak",
            kind.name()
        );
    }
}

#[test]
fn timely_secure_prefetchers_close_the_channel() {
    for kind in PrefetcherKind::EVALUATED {
        let cfg = SystemConfig::baseline(1)
            .with_secure(SecureMode::GhostMinion)
            .with_prefetcher(kind)
            .with_mode(PrefetchMode::OnCommit)
            .with_timely_secure(true)
            .with_suf(true);
        assert_eq!(
            leaked_lines(&cfg),
            Vec::<u64>::new(),
            "TS-{} (+SUF) must not leak",
            kind.name()
        );
    }
}

/// PREFENDER-style priming victim (wrong-path loads inherit the gadget
/// branch's IP, so the correct path can train any prefetcher on that IP
/// before the burst). Three phases, each aimed at a prefetcher family:
///
/// - **Cold footprint sweep**: a recurring 8-line footprint across 200
///   spatial regions fills Bingo's pattern history (the PHT only commits
///   on accumulation-table eviction, so it needs >128 regions).
/// - **Chained +1 cold walk**: dependent loads keep exactly one miss in
///   flight, so stride/delta prefetchers (IP-Stride, IPCP, SPP) see the
///   +1 deltas *in program order* (a superscalar walk trains them on a
///   scrambled −1/+3 stream), and each fill lands a full fetch latency
///   after its predecessor's access — which is precisely Berti's
///   timeliness condition for crediting a delta.
/// - **Quiesce**: ALUs drain the prefetch queue and MSHRs so the burst's
///   own proposals are not resource-dropped.
///
/// The mispredicted branch then bursts `gadget_loads` wrong-path loads
/// at the start of the *secret* region. The burst is kept shorter than
/// the trained patterns' reach: extrapolated prefetches must target
/// lines *beyond* the in-flight demands, or they merge onto the demand
/// MSHRs (whose speculative fills go only to the GM) and nothing ever
/// reaches the probeable hierarchy.
fn pf_victim_trace(gadget_loads: u64) -> Arc<Trace> {
    const PRIME_BASE: u64 = 0x100_0000;
    const WALK_BASE: u64 = 0x40_0000;
    const REGION_BYTES: u64 = 32 * 64; // one Bingo region
    let mut instrs = Vec::new();
    for r in 0..200u64 {
        for off in 0..8u64 {
            instrs.push(Instr::load(0x200, PRIME_BASE + r * REGION_BYTES + off * 64));
            instrs.push(Instr::alu(0x300));
        }
        instrs.push(Instr::branch(0x200, true));
    }
    let mut last_load: Option<usize> = None;
    for off in 0..128u64 {
        let dep = last_load.map_or(0, |l| instrs.len() - l) as u16;
        last_load = Some(instrs.len());
        instrs.push(Instr::load_dep(0x200, WALK_BASE + off * 64, dep));
    }
    for _ in 0..4000u64 {
        instrs.push(Instr::alu(0x400));
    }
    instrs.push(Instr::branch(0x200, false));
    let gadget = (instrs.len() - 1) as u32;
    for i in 0..400u64 {
        instrs.push(Instr::alu(0x400));
        if i % 9 == 0 {
            instrs.push(Instr::load(0x500, 0x2000 + (i % 8) * 64));
        }
    }
    let mut t = Trace::new("pf-victim", instrs);
    t.attach_wrong_path(
        gadget,
        (0..gadget_loads)
            .map(|k| Addr::new(SECRET_BASE + k * 64))
            .collect(),
    );
    Arc::new(t)
}

/// Probe window for the prefetcher litmus: wider than [`PROBE_LINES`]
/// because trained prefetchers reach well past the burst (Berti's ranked
/// deltas extend ~16 lines; IPCP streams further).
const PF_PROBE_LINES: u64 = 64;

/// Secret-region lines visible in L1D/L2/LLC after running `trace`.
fn probe_footprint(cfg: &SystemConfig, trace: Arc<Trace>) -> Vec<u64> {
    let n = trace.instrs.len() as u64;
    let mut sys = System::new(cfg.clone(), vec![trace]).with_window(0, n);
    sys.run();
    assert!(
        sys.wrong_path_loads(0) > 0,
        "gadget never executed transiently — the test is vacuous"
    );
    (0..PF_PROBE_LINES)
        .filter(|k| {
            let line = Addr::new(SECRET_BASE + k * 64).line();
            [CacheLevel::L1d, CacheLevel::L2, CacheLevel::Llc]
                .iter()
                .any(|&lvl| sys.probe_line(0, lvl, line))
        })
        .collect()
}

/// The paper's core claim, one cell at a time: *every* evaluated
/// prefetcher trained on-access by transient loads measurably perturbs
/// the probe region even under GhostMinion, while the same prefetcher
/// moved to commit-time training (plus SUF) leaves zero footprint. The
/// on-access half doubles as the anti-vacuity check for the on-commit
/// half: the trace demonstrably trains this prefetcher into the secret
/// region, so an empty on-commit footprint is a real security result.
#[test]
fn every_prefetcher_leaks_on_access_and_is_clean_on_commit() {
    for kind in PrefetcherKind::EVALUATED {
        let insecure = SystemConfig::baseline(1)
            .with_secure(SecureMode::GhostMinion)
            .with_prefetcher(kind)
            .with_mode(PrefetchMode::OnAccess);
        let leaked = probe_footprint(&insecure, pf_victim_trace(3));
        assert!(
            !leaked.is_empty(),
            "{} trained on-access must perturb the probe region \
             (vacuous pass: the gadget never trained it)",
            kind.name()
        );

        let secure = insecure
            .clone()
            .with_mode(PrefetchMode::OnCommit)
            .with_suf(true);
        assert_eq!(
            probe_footprint(&secure, pf_victim_trace(3)),
            Vec::<u64>::new(),
            "{} trained at commit under GhostMinion+SUF must leave zero footprint",
            kind.name()
        );
    }
}

#[test]
fn suf_does_not_reopen_the_channel() {
    let cfg = SystemConfig::baseline(1)
        .with_secure(SecureMode::GhostMinion)
        .with_suf(true);
    assert_eq!(leaked_lines(&cfg), Vec::<u64>::new());
}
