//! End-to-end security properties (the paper's threat model, Section
//! II-A): transient execution must leave no observable footprint in the
//! non-speculative hierarchy under GhostMinion, with or without secure
//! prefetching — and the insecure configurations must demonstrably leak
//! (otherwise these tests would pass vacuously).

use secure_prefetch::prelude::*;
use secure_prefetch::sim::System;
use secure_prefetch::trace::{Instr, Trace};
use std::sync::Arc;

const SECRET_BASE: u64 = 0x7777_0000;
/// Probe window in lines around the secret region.
const PROBE_LINES: u64 = 16;

/// Victim trace with a trained-then-mispredicting branch whose wrong path
/// transiently performs `gadget_loads` strided secret-dependent loads.
fn victim_trace(gadget_loads: u64) -> Arc<Trace> {
    let mut instrs = Vec::new();
    for i in 0..200u64 {
        instrs.push(Instr::load(0x100, 0x1000 + (i % 16) * 64));
        instrs.push(Instr::branch(0x200, true));
        instrs.push(Instr::alu(0x300));
    }
    instrs.push(Instr::branch(0x200, false));
    let gadget = (instrs.len() - 1) as u32;
    for i in 0..600u64 {
        instrs.push(Instr::alu(0x400));
        if i % 9 == 0 {
            instrs.push(Instr::load(0x500, 0x2000 + (i % 8) * 64));
        }
    }
    let mut t = Trace::new("victim", instrs);
    t.attach_wrong_path(
        gadget,
        (0..gadget_loads)
            .map(|k| Addr::new(SECRET_BASE + k * 64))
            .collect(),
    );
    Arc::new(t)
}

/// Runs the victim under `cfg`; returns the secret-region lines visible
/// in L1D/L2/LLC afterwards, and asserts the gadget did execute.
fn leaked_lines(cfg: &SystemConfig) -> Vec<u64> {
    let trace = victim_trace(4);
    let n = trace.instrs.len() as u64;
    let mut sys = System::new(cfg.clone(), vec![trace]).with_window(0, n);
    sys.run();
    assert!(
        sys.wrong_path_loads(0) > 0,
        "gadget never executed transiently — the test is vacuous"
    );
    (0..PROBE_LINES)
        .filter(|k| {
            let line = Addr::new(SECRET_BASE + k * 64).line();
            [CacheLevel::L1d, CacheLevel::L2, CacheLevel::Llc]
                .iter()
                .any(|&lvl| sys.probe_line(0, lvl, line))
        })
        .collect()
}

#[test]
fn non_secure_cache_leaks_transient_loads() {
    let leaked = leaked_lines(&SystemConfig::baseline(1));
    assert!(
        !leaked.is_empty(),
        "a conventional cache must expose transiently loaded lines"
    );
}

#[test]
fn ghostminion_hides_transient_loads() {
    let cfg = SystemConfig::baseline(1).with_secure(SecureMode::GhostMinion);
    assert_eq!(
        leaked_lines(&cfg),
        Vec::<u64>::new(),
        "GhostMinion must not expose transient loads in L1D/L2/LLC"
    );
}

#[test]
fn on_access_prefetcher_reopens_the_channel_on_ghostminion() {
    let cfg = SystemConfig::baseline(1)
        .with_secure(SecureMode::GhostMinion)
        .with_prefetcher(PrefetcherKind::IpStride)
        .with_mode(PrefetchMode::OnAccess);
    assert!(
        !leaked_lines(&cfg).is_empty(),
        "an on-access prefetcher trained by transient loads must leak \
         (this is the paper's motivating attack)"
    );
}

#[test]
fn on_commit_prefetcher_closes_the_channel() {
    for kind in PrefetcherKind::EVALUATED {
        let cfg = SystemConfig::baseline(1)
            .with_secure(SecureMode::GhostMinion)
            .with_prefetcher(kind)
            .with_mode(PrefetchMode::OnCommit);
        assert_eq!(
            leaked_lines(&cfg),
            Vec::<u64>::new(),
            "{} trained at commit must not leak",
            kind.name()
        );
    }
}

#[test]
fn timely_secure_prefetchers_close_the_channel() {
    for kind in PrefetcherKind::EVALUATED {
        let cfg = SystemConfig::baseline(1)
            .with_secure(SecureMode::GhostMinion)
            .with_prefetcher(kind)
            .with_mode(PrefetchMode::OnCommit)
            .with_timely_secure(true)
            .with_suf(true);
        assert_eq!(
            leaked_lines(&cfg),
            Vec::<u64>::new(),
            "TS-{} (+SUF) must not leak",
            kind.name()
        );
    }
}

#[test]
fn suf_does_not_reopen_the_channel() {
    let cfg = SystemConfig::baseline(1)
        .with_secure(SecureMode::GhostMinion)
        .with_suf(true);
    assert_eq!(leaked_lines(&cfg), Vec::<u64>::new());
}
